package detect

import (
	"fmt"

	"tiledcfd/internal/scf"
)

// Decision is the outcome of applying a detector with a threshold.
type Decision struct {
	Detector  string  // registry name of the detector that decided
	Statistic float64 // scalar decision statistic
	Threshold float64 // threshold the statistic was compared against
	Detected  bool    // Statistic > Threshold
}

// Detector computes a scalar decision statistic from sampled input.
// Larger statistics indicate stronger evidence of a present signal.
type Detector interface {
	// Name identifies the detector in reports.
	Name() string
	// Statistic evaluates the input.
	Statistic(x []complex128) (float64, error)
}

// EnergyDetector is the radiometer baseline (the paper's reference [7]).
// AssumedNoisePower is what the detector believes the noise floor is; the
// gap between belief and truth is exactly the noise-uncertainty problem
// that motivates CFD.
type EnergyDetector struct {
	AssumedNoisePower float64 // believed noise floor the energy is normalised by
}

// Name implements Detector.
func (EnergyDetector) Name() string { return "energy" }

// Statistic implements Detector.
func (d EnergyDetector) Statistic(x []complex128) (float64, error) {
	return EnergyStatistic(x, d.AssumedNoisePower)
}

// CFDDetector is the blind cyclostationary feature detector: it computes
// a spectral-correlation surface and searches all cycle offsets
// |a| >= MinAbsA.
type CFDDetector struct {
	Params scf.Params // surface geometry for the default direct DSCF
	// MinAbsA excludes the offsets nearest a=0, where spectral leakage of
	// the PSD row lives; 1 searches everything off the PSD row.
	MinAbsA int
	// Estimator selects how the surface is computed. nil uses the paper's
	// direct DSCF with Params; any scf.Estimator (fam.FAM, fam.SSCA, a
	// configured scf.Direct) can be substituted — the statistic is
	// self-normalising, so no rescaling is needed when swapping.
	Estimator scf.Estimator
}

// Name implements Detector. With an estimator plugged in the name is
// suffixed ("cfd-fam") so Monte-Carlo reports distinguish the variants.
func (d CFDDetector) Name() string {
	if d.Estimator != nil {
		return "cfd-" + d.Estimator.Name()
	}
	return "cfd"
}

// Statistic implements Detector.
func (d CFDDetector) Statistic(x []complex128) (float64, error) {
	s, _, err := estimateSurface(d.Estimator, d.Params, x)
	if err != nil {
		return 0, err
	}
	minA := d.MinAbsA
	if minA == 0 {
		minA = 1
	}
	return CFDStatistic(s, minA)
}

// estimateSurface computes a decision surface via est, falling back to
// the direct DSCF with p when est is nil — the shared dispatch of every
// estimator-aware detector.
func estimateSurface(est scf.Estimator, p scf.Params, x []complex128) (*scf.Surface, *scf.Stats, error) {
	if est != nil {
		return est.Estimate(x)
	}
	return scf.Compute(x, p)
}

// KnownCycleDetector is the single-correlator detector of the paper's
// reference [8]: the cycle offset A of the target signal is known a
// priori (e.g. its doubled carrier), and only that offset is evaluated.
type KnownCycleDetector struct {
	Params scf.Params // surface geometry for the default direct DSCF
	A      int        // the known cycle offset to evaluate
	// Estimator optionally replaces the direct DSCF, as in CFDDetector.
	Estimator scf.Estimator
}

// Name implements Detector.
func (d KnownCycleDetector) Name() string {
	if d.Estimator != nil {
		return "known-cycle-" + d.Estimator.Name()
	}
	return "known-cycle"
}

// Statistic implements Detector.
func (d KnownCycleDetector) Statistic(x []complex128) (float64, error) {
	s, _, err := estimateSurface(d.Estimator, d.Params, x)
	if err != nil {
		return 0, err
	}
	return KnownCycleStatistic(s, d.A)
}

// Apply evaluates a detector against a threshold.
func Apply(d Detector, x []complex128, threshold float64) (Decision, error) {
	stat, err := d.Statistic(x)
	if err != nil {
		return Decision{}, fmt.Errorf("detect: %s: %w", d.Name(), err)
	}
	return Decision{
		Detector:  d.Name(),
		Statistic: stat,
		Threshold: threshold,
		Detected:  stat > threshold,
	}, nil
}
