package detect

import (
	"fmt"
	"sort"

	"tiledcfd/internal/scf"
)

// SignalEstimate carries blind parameter estimates extracted from a DSCF
// surface — what a Cognitive Radio does after detection: characterise the
// licensed user so its band (and adjacent guard bands) can be avoided.
type SignalEstimate struct {
	// CarrierBin is the estimated carrier frequency in FFT bins,
	// recovered from the doubled-carrier feature at a = ±carrier.
	CarrierBin int
	// CarrierStrength is the normalised profile value at that offset.
	CarrierStrength float64
	// SymbolRateBins is the estimated symbol rate in bins (0 when no
	// symbol-rate feature is found), recovered from the smallest
	// harmonic spacing among the remaining features.
	SymbolRateBins int
}

// EstimateSignal analyses the cycle-frequency profile of a surface and
// extracts the carrier and symbol-rate estimates. minAbsA excludes the
// offsets nearest the PSD row; threshold (relative to the a=0 profile)
// selects feature candidates.
//
// The method exploits the structure the discrimination tests verify: for
// a real PSK signal on carrier f_c with symbol rate R (both in bins), the
// profile peaks at a = ±f_c (doubled carrier, strongest) and at
// a = ±k·R/2 harmonics.
func EstimateSignal(s *scf.Surface, minAbsA int, threshold float64) (SignalEstimate, error) {
	if minAbsA < 1 || minAbsA > s.M-1 {
		return SignalEstimate{}, fmt.Errorf("detect: minAbsA=%d outside [1,%d]", minAbsA, s.M-1)
	}
	if threshold <= 0 {
		return SignalEstimate{}, fmt.Errorf("detect: threshold %v must be positive", threshold)
	}
	prof := s.AlphaProfile()
	base := prof[s.M-1]
	if base <= 0 {
		return SignalEstimate{}, fmt.Errorf("detect: zero PSD row")
	}
	// Collect feature candidates above threshold, positive offsets only
	// (the profile is symmetric by the Hermitian property).
	type feat struct {
		a int
		v float64
	}
	var feats []feat
	for ai, v := range prof {
		a := ai - (s.M - 1)
		if a >= minAbsA && v/base >= threshold {
			feats = append(feats, feat{a: a, v: v / base})
		}
	}
	if len(feats) == 0 {
		return SignalEstimate{}, fmt.Errorf("detect: no cyclic features above %.2f", threshold)
	}
	// Carrier: the strongest feature.
	sort.Slice(feats, func(i, j int) bool { return feats[i].v > feats[j].v })
	est := SignalEstimate{CarrierBin: feats[0].a, CarrierStrength: feats[0].v}
	// Symbol rate: smallest spacing between remaining distinct offsets
	// (harmonics of R/2 in a-units mean spacing R/2; rate = 2·spacing...
	// but the harmonics at a = k·R/2 are spaced R/2 apart, so the rate in
	// bins is twice the smallest spacing). With only the carrier found,
	// no rate is estimated.
	if len(feats) >= 2 {
		offsets := make([]int, len(feats))
		for i, f := range feats {
			offsets[i] = f.a
		}
		sort.Ints(offsets)
		spacing := 0
		for i := 1; i < len(offsets); i++ {
			d := offsets[i] - offsets[i-1]
			if d > 0 && (spacing == 0 || d < spacing) {
				spacing = d
			}
		}
		if spacing > 0 {
			est.SymbolRateBins = 2 * spacing
		}
	}
	return est, nil
}
