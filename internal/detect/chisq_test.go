package detect

import (
	"math"
	"testing"
)

// Textbook chi-square quantiles: InvChiSquareCDF must reproduce the
// statistical-table values the closed-form thresholds are built from.
func TestInvChiSquareCDFTableValues(t *testing.T) {
	cases := []struct {
		p    float64
		dof  int
		want float64
	}{
		{0.95, 2, 5.9915},
		{0.99, 2, 9.2103},
		{0.95, 4, 9.4877},
		{0.99, 4, 13.2767},
		{0.95, 8, 15.5073},
		{0.90, 8, 13.3616},
		{0.95, 1, 3.8415},
	}
	for _, c := range cases {
		got, err := InvChiSquareCDF(c.p, c.dof)
		if err != nil {
			t.Fatalf("InvChiSquareCDF(%v, %d): %v", c.p, c.dof, err)
		}
		if math.Abs(got-c.want) > 5e-4 {
			t.Errorf("InvChiSquareCDF(%v, %d) = %.4f, want %.4f", c.p, c.dof, got, c.want)
		}
	}
}

func TestChiSquareCDFInverseRoundTrip(t *testing.T) {
	for _, dof := range []int{1, 2, 4, 8, 32} {
		for _, p := range []float64{0.01, 0.05, 0.5, 0.95, 0.999} {
			x, err := InvChiSquareCDF(p, dof)
			if err != nil {
				t.Fatalf("quantile p=%v dof=%d: %v", p, dof, err)
			}
			back, err := ChiSquareCDF(x, dof)
			if err != nil {
				t.Fatalf("cdf x=%v dof=%d: %v", x, dof, err)
			}
			if math.Abs(back-p) > 1e-8 {
				t.Errorf("CDF(InvCDF(%v, %d)) = %v, error %v", p, dof, back-p, math.Abs(back-p))
			}
		}
	}
}

func TestInvChiSquareCDFMonotonicInP(t *testing.T) {
	prev := 0.0
	for _, p := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999} {
		x, err := InvChiSquareCDF(p, 8)
		if err != nil {
			t.Fatal(err)
		}
		if x <= prev {
			t.Fatalf("quantile not increasing: p=%v gives %v after %v", p, x, prev)
		}
		prev = x
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, err := InvChiSquareCDF(0, 2); err == nil {
		t.Error("InvChiSquareCDF accepted p=0")
	}
	if _, err := InvChiSquareCDF(1, 2); err == nil {
		t.Error("InvChiSquareCDF accepted p=1")
	}
	if _, err := InvChiSquareCDF(0.5, 0); err == nil {
		t.Error("InvChiSquareCDF accepted dof=0")
	}
	if c, err := ChiSquareCDF(-1, 2); err != nil || c != 0 {
		t.Errorf("ChiSquareCDF(-1, 2) = %v, %v; want 0 (left of support)", c, err)
	}
	if _, err := ChiSquareCDF(1, 0); err == nil {
		t.Error("ChiSquareCDF accepted dof=0")
	}
}

func TestBinomialCI(t *testing.T) {
	// 95% CI at p=0.05 over 2000 trials: 0.05 ± 1.96·sqrt(0.05·0.95/2000).
	lo, hi, err := BinomialCI(0.05, 2000, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	w := 1.959964 * math.Sqrt(0.05*0.95/2000)
	if math.Abs(lo-(0.05-w)) > 1e-6 || math.Abs(hi-(0.05+w)) > 1e-6 {
		t.Errorf("CI = [%v, %v], want [%v, %v]", lo, hi, 0.05-w, 0.05+w)
	}
	// Tails clamp to [0, 1].
	lo, _, err = BinomialCI(0.001, 100, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 {
		t.Errorf("low tail not clamped: %v", lo)
	}
	for _, bad := range []func() error{
		func() error { _, _, err := BinomialCI(0, 100, 0.95); return err },
		func() error { _, _, err := BinomialCI(1, 100, 0.95); return err },
		func() error { _, _, err := BinomialCI(0.05, 0, 0.95); return err },
		func() error { _, _, err := BinomialCI(0.05, 100, 1); return err },
	} {
		if bad() == nil {
			t.Error("BinomialCI accepted an invalid argument")
		}
	}
}
