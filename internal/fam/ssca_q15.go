package fam

import (
	"fmt"
	"runtime"
	"sync"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/fixed"
	"tiledcfd/internal/montium"
	"tiledcfd/internal/scf"
)

// SSCAQ15 is the Q15 fixed-point Strip Spectral Correlation Analyzer:
// the same strip geometry as SSCA on the 16-bit saturating datapath —
// quantised input with backoff, a block-floating-point sliding
// channelizer with tracked per-hop exponents, Q15 strip products against
// the conjugate full-rate input, block-floating-point N-point strip FFTs
// with per-strip exponents, and a lossless (left-shift) exponent merge
// into one int64 grid reduced to a Q15 surface by a single surface-level
// rounding. Bit-exact deterministic across runs, Workers settings and
// fixed.Kernels implementations; Stats.Kernel records which kernels ran.
type SSCAQ15 struct {
	// Params configures the channelizer and grid exactly as for SSCA
	// (K=256, M=K/4, rectangular window by default; Hop and Blocks are
	// ignored — the SSCA channelizer advances one sample per hop).
	Params scf.Params
	// N is the strip FFT length (power of two >= K). Zero selects the
	// largest power of two with N+K-1 <= len(x).
	N int
	// Workers bounds the goroutines computing strips concurrently.
	// 0 means runtime.GOMAXPROCS(0); 1 forces the serial path, which
	// batches every strip FFT through one shared plan invocation. Strips
	// are independent integer computations, so every worker count
	// produces bit-identical surfaces.
	Workers int
	// InputScale is the peak amplitude the input is conditioned to
	// before Q15 quantisation, as for FAMQ15 (0 = 0.5).
	InputScale float64
	// InputPeak, when positive, fixes the conditioning full-scale
	// reference instead of measuring the batch peak, as for
	// FAMQ15.InputPeak; required (non-zero) by NewAccumulator.
	InputPeak float64
	// Policy selects the per-stage FFT scaling, as for FAMQ15.
	Policy fft.ScalingPolicy
}

// Name implements scf.Estimator.
func (SSCAQ15) Name() string { return "ssca-q15" }

// MinSamples returns the shortest input Estimate accepts for the
// configured geometry: a K-length strip needs 2K-1 samples.
func (e SSCAQ15) MinSamples() int {
	p := famDefaults(e.Params, 1)
	n := e.N
	if n < p.K {
		n = p.K
	}
	return n + p.K - 1
}

// Estimate implements scf.Estimator: the Q15 surface converted exactly
// into float-SSCA units.
func (e SSCAQ15) Estimate(x []complex128) (*scf.Surface, *scf.Stats, error) {
	q, stats, err := e.EstimateQ15(x)
	if err != nil {
		return nil, nil, err
	}
	return q.Float(), stats, nil
}

// EstimateQ15 computes the surface in its native Q15-plus-exponent form.
func (e SSCAQ15) EstimateQ15(x []complex128) (*scf.QSurface, *scf.Stats, error) {
	p := famDefaults(e.Params, 1)
	p.Hop = 1
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	backoff, err := q15Backoff(e.InputScale)
	if err != nil {
		return nil, nil, err
	}
	peak, err := q15InputPeak(e.InputPeak)
	if err != nil {
		return nil, nil, err
	}
	n := e.N
	if n == 0 {
		n = pow2Floor(len(x) - p.K + 1)
	} else if n < p.K {
		return nil, nil, fmt.Errorf("fam: SSCA-Q15 strip length N=%d must be >= K=%d", n, p.K)
	}
	if n < p.K {
		return nil, nil, needSamples("SSCA-Q15", 2*p.K-1, len(x))
	}
	if !fft.IsPow2(n) {
		return nil, nil, fmt.Errorf("fam: SSCA-Q15 strip length N=%d must be a power of two", n)
	}
	if len(x) < n+p.K-1 {
		return nil, nil, needSamples("SSCA-Q15", n+p.K-1, len(x))
	}
	win, err := fft.FixedWindow(p.Window, p.K)
	if err != nil {
		return nil, nil, err
	}
	kern := fixed.Active()
	need := n + p.K - 1
	xq, gain := quantiseQ15(x, need, backoff, peak)
	ch, err := channelizeQ15(kern, xq, p.K, 1, n, win, e.Policy)
	if err != nil {
		return nil, nil, err
	}
	return sscaQ15Finish(p, kern, ch, xq, gain, e.Workers, need, e.Policy)
}

// sscaQ15Finish runs the second stage of the Q15 SSCA on an already
// channelized snapshot: exponent alignment, the per-channel strip FFTs
// batched through one shared plan invocation per worker, derotation, the
// lossless exponent merge into the int64 grid, and the single-rounding
// surface reduction. It is shared verbatim by the batch estimator and
// the streaming accumulator's Snapshot, which is what makes the two
// bit-identical. The channelizer is consumed; xq must hold at least
// n + K/2 quantised samples (the conjugate factor's span).
func sscaQ15Finish(p scf.Params, kern fixed.Kernels, ch *q15Channelizer, xq []fixed.Complex, gain float64, workers, need int, policy fft.ScalingPolicy) (*scf.QSurface, *scf.Stats, error) {
	n := len(ch.hops)
	emax, aligned := ch.alignExponents(kern)
	// The conjugate input factor is centre-aligned with the channelizer
	// window (same group-delay argument as the float path) and shared by
	// every strip. It is plain quantised input: exponent zero.
	centre := p.K / 2
	xc := make([]fixed.Complex, n)
	for i := range xc {
		xc[i] = fixed.Conj(xq[i+centre])
	}
	m := p.M - 1
	// The held rows (full plane, or the candidate set under alpha
	// pruning) determine which channels need strips: residues f+a mod K
	// per row a — exactly as the float SSCA prunes.
	rowAlphas := p.SurfaceAlphas()
	if rowAlphas == nil {
		rowAlphas = make([]int, 2*m+1)
		for i := range rowAlphas {
			rowAlphas[i] = i - m
		}
	}
	needed := neededChannels(p.K, m, rowAlphas, false)
	planN, err := fft.NewFixedPlan(n)
	if err != nil {
		return nil, nil, err
	}
	rootsN, err := fft.FixedRoots(n)
	if err != nil {
		return nil, nil, err
	}
	// The channel-major series become the strips in place: the Q15
	// product against xc, the N-point block-floating-point FFTs batched
	// through one ForwardScaledBatchWith call per worker, and the
	// per-bin derotation by e^{-j2πq·centre/N} through the Q15 roots.
	strips := ch.transpose(needed)
	stripExp := make([]int, p.K)
	stripJob := func(ks []int) error {
		rows := make([][]fixed.Complex, len(ks))
		for i, k := range ks {
			kern.MulElems(strips[k], strips[k], xc)
			rows[i] = strips[k]
		}
		exps, err := planN.ForwardScaledBatchWith(kern, rows, policy)
		if err != nil {
			return err
		}
		for i, k := range ks {
			stripExp[k] = exps[i]
			kern.MulRoots(strips[k], strips[k], rootsN, 0, centre, n-1)
		}
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(needed) {
		workers = len(needed)
	}
	if workers <= 1 {
		if err := stripJob(needed); err != nil {
			return nil, nil, err
		}
	} else {
		shards := make([][]int, workers)
		for i, k := range needed {
			shards[i%workers] = append(shards[i%workers], k)
		}
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				errs[w] = stripJob(shards[w])
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, nil, err
			}
		}
	}
	// Merge the per-strip exponents losslessly: every cell value is
	// widened to int64 and left-shifted up to the common scale 2^Emin
	// (strip k's true value is q15·2^(emax+e_k), so the strip with the
	// smallest exponent defines the finest grid). The surface-level
	// reduction then rounds once.
	eMin := 0
	for i, k := range needed {
		ek := emax + stripExp[k]
		if i == 0 || ek < eMin {
			eMin = ek
		}
	}
	grid := newAccGridFor(p)
	for i, a := range rowAlphas {
		row := grid.data[i]
		for f := -m; f <= m; f++ {
			k := fft.BinIndex(p.K, f+a)
			u := strips[k][fft.BinIndex(n, n/p.K*(a-f))]
			sh := uint(emax + stripExp[k] - eMin)
			row[f+m] = fixed.CAcc{
				Re: int64(u.Re) << sh,
				Im: int64(u.Im) << sh,
			}
		}
	}
	// Cell int64 = float·(n·gain²)·2^(15-Emin); reduce expects
	// 2^(30-accExp), so accExp = 15+Emin.
	s := grid.reduce(15+eMin, surfaceGain(n, gain))
	cells := int64(p.DSCFMults())
	stats := &scf.Stats{
		Blocks:    n,
		FFTMults:  n*fft.ComplexMults(p.K) + len(needed)*fft.ComplexMults(n),
		DSCFMults: n*p.K + len(needed)*n,
		Cycles: ch.fftCy +
			int64(len(needed))*montiumFFTCycles(n) +
			montium.MACKernelCycles(ch.macCy+2*int64(len(needed))*int64(n)) +
			montium.ReadDataCycles(int64(need)) +
			montium.AlignCycles(aligned+cells),
		Kernel: kern.Name(),
	}
	// The batch backend runs the whole pipeline on one modeled tile;
	// internal/tile schedules fill multi-tile breakdowns.
	stats.PerTile = []scf.TileCycles{{Tile: 0, Compute: stats.Cycles}}
	return s, stats, nil
}

var _ scf.Estimator = SSCAQ15{}
