package fam

import (
	"math"
	"math/cmplx"
	"testing"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/scf"
	"tiledcfd/internal/sig"
)

// tone returns a complex exponential at normalised frequency f0.
func tone(n int, f0 float64) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*f0*float64(i)))
	}
	return x
}

// realTone returns a real cosine at normalised frequency f0. Its only
// off-row spectral correlation is the conjugate doubled-carrier feature:
// bins ±f0 are coherent, so the unique cell pairing both is (f=0, a=f0).
func realTone(n int, f0 float64) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Cos(2*math.Pi*f0*float64(i)), 0)
	}
	return x
}

func TestFAMToneConcentratesOnPSDRow(t *testing.T) {
	// A pure complex tone has spectral correlation only at α = 0: every
	// off-row cell must be negligible against the PSD row peak.
	const k, m = 64, 16
	e := FAM{Params: scf.Params{K: k, M: m}}
	s, stats, err := e.Estimate(tone(k*16, 8.0/k))
	if err != nil {
		t.Fatal(err)
	}
	fPeak, aPeak, _ := s.MaxFeature(false)
	if aPeak != 0 || fPeak != 8 {
		t.Fatalf("tone peak at (f=%d, a=%d), want (8, 0)", fPeak, aPeak)
	}
	psd := cmplx.Abs(s.At(8, 0))
	_, _, off := s.MaxFeature(true)
	if off > psd*0.05 {
		t.Fatalf("off-row leakage %g vs PSD peak %g", off, psd)
	}
	if stats.Blocks < 2 {
		t.Fatalf("smoothing length %d, want >= 2", stats.Blocks)
	}
}

func TestFAMDoubledCarrierFeature(t *testing.T) {
	// A real carrier at f0 has the classic conjugate feature at
	// α = 2·f0 — surface offset a = f0 in bins — centred at f = 0.
	const k, m = 64, 16
	const bin = 8
	x := realTone(k*16, float64(bin)/k)
	for _, w := range []fft.WindowKind{fft.Rectangular, fft.Hamming} {
		e := FAM{Params: scf.Params{K: k, M: m, Window: w}}
		s, _, err := e.Estimate(x)
		if err != nil {
			t.Fatal(err)
		}
		f, a, _ := s.MaxFeature(true)
		if abs(a) != bin || f != 0 {
			t.Fatalf("window %v: doubled-carrier feature at (f=%d, a=%d), want (0, ±%d)", w, f, a, bin)
		}
	}
}

func TestFAMHermitianSymmetry(t *testing.T) {
	rng := sig.NewRand(3)
	x := sig.Samples(&sig.WGN{Sigma: 1, Real: true, Rng: rng}, 64*16)
	e := FAM{Params: scf.Params{K: 64, M: 16}}
	s, _, err := e.Estimate(x)
	if err != nil {
		t.Fatal(err)
	}
	// The FAM product sequences for (f, a) and (f, -a) are exact
	// conjugates, so the surface is Hermitian to rounding.
	if herm := s.HermitianError(); herm > 1e-9*s.AlphaProfile()[s.M-1] {
		t.Fatalf("Hermitian error %g", herm)
	}
}

func TestFAMDefaultsAndStats(t *testing.T) {
	e := FAM{Params: scf.Params{K: 64, M: 16}}
	x := tone(64+3*16, 0.1) // 4 hops of 16 -> P = 4
	s, stats, err := e.Estimate(x)
	if err != nil {
		t.Fatal(err)
	}
	if s.M != 16 {
		t.Fatalf("surface M = %d", s.M)
	}
	if stats.Blocks != 4 {
		t.Fatalf("P = %d hops, want 4 (default hop K/4)", stats.Blocks)
	}
	cells := 31 * 31
	wantFFT := 4*fft.ComplexMults(64) + cells*fft.ComplexMults(4)
	wantProd := 4*64 + cells*4
	if stats.FFTMults != wantFFT || stats.DSCFMults != wantProd {
		t.Fatalf("stats %+v, want FFT=%d products=%d", stats, wantFFT, wantProd)
	}
}

func TestFAMErrors(t *testing.T) {
	e := FAM{Params: scf.Params{K: 64, M: 16}}
	if _, _, err := e.Estimate(make([]complex128, 70)); err == nil {
		t.Error("input shorter than two hops should fail")
	}
	if got, want := e.MinSamples(), 64+16; got != want {
		t.Errorf("MinSamples = %d, want %d", got, want)
	}
	bad := FAM{Params: scf.Params{K: 63, M: 16}}
	if _, _, err := bad.Estimate(make([]complex128, 1024)); err == nil {
		t.Error("non-power-of-two K should fail")
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
