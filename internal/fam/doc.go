// Package fam implements the time-smoothing spectral-correlation
// estimators — the FFT Accumulation Method (FAM) and the Strip Spectral
// Correlation Analyzer (SSCA) — behind the scf.Estimator interface, so
// detectors and pipelines can swap them for the paper's direct DSCF
// without touching the decision layer.
//
// Both estimators share the same front end: a K-point channelizer that
// hops along the input, applies an analysis window, computes the FFT of
// each hop and downconverts every channel to baseband with the
// absolute-time phase reference e^{-j2π·v·start/K} (the complex
// demodulate x_v(n) of the classical derivation; this is the same
// rotation the direct method's expression 2 applies). They differ in the
// back end:
//
//   - FAM (hop L, typically K/4): for every surface cell (f, a) the
//     product sequence x_{f+a}(n)·conj(x_{f-a}(n)) over the P channelizer
//     hops is passed through a P-point second FFT. Bin q of that FFT
//     estimates the SCF at cycle frequency α = 2a/K + q/(P·L); bin 0 is
//     exactly the grid cell the rest of the system consumes, and the
//     remaining bins refine α to a resolution of 1/(P·L) — far finer than
//     the direct method's 2/K.
//   - SSCA (hop 1): each channel's demodulate is multiplied against the
//     conjugate of the full-rate input, and one long N-point strip FFT
//     per channel covers a diagonal strip of the (f, α) plane: channel k,
//     bin q estimates the SCF at f = k/(2K) - q/(2N), α = k/K + q/N.
//     Surface cell (f, a) is channel k = f+a, bin q = N·(a-f)/K.
//
// Complexity (complex multiplications, reported in Stats): the direct
// DSCF spends Blocks·(2M-1)² on products — the paper's "16× the FFT"
// figure. FAM spends P·K on downconversion plus, per cell, P products
// and a P-point FFT. SSCA spends N·(K/2)·log2 K on the sliding
// channelizer and (N/2)·log2 N per strip; its advantage is resolution —
// N cycle-frequency points per strip for one FFT — rather than raw cost
// on the small (2M-1)² grid. Stats always report this canonical model;
// the implementation itself shortcuts where the algebra allows (FAM
// evaluates each cell's bin 0 as an O(P) dot product and mirrors the
// α < 0 half-plane by exact Hermitian symmetry) — see the README's
// model-vs-measured note.
//
// Estimates agree with the direct method at grid points up to the
// smoothing window: cross-check tests assert all three estimators locate
// the same strongest cyclic feature on a BPSK band. Unlike the direct
// method, the SSCA surface is only approximately Hermitian
// (S_f^{-a} ≈ conj(S_f^a)): cells at ±a are estimated from different
// channel/bin combinations, so they differ at estimation-noise level.
package fam
