package fam

import (
	"math"
	"math/cmplx"
	"testing"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/scf"
	"tiledcfd/internal/sig"
)

// q15TestBand synthesises the E14 licensed-user scenario: a real BPSK
// carrier in real AWGN at 10 dB, n samples, deterministic.
func q15TestBand(t testing.TB, n int, seed uint64) []complex128 {
	t.Helper()
	rng := sig.NewRand(seed)
	b := &sig.BPSK{Amp: 1, Carrier: 0.125, SymbolLen: 8, Rng: rng}
	x := sig.Samples(b, n)
	noisy, _, err := sig.AddAWGN(x, 10, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	return noisy
}

// surfaceSQNR returns 10·log10(Σ|ref|² / Σ|ref-got|²) over the grid.
func surfaceSQNR(ref, got *scf.Surface) float64 {
	var sig, noise float64
	for i := range ref.Data {
		for j := range ref.Data[i] {
			r := ref.Data[i][j]
			d := r - got.Data[i][j]
			sig += real(r)*real(r) + imag(r)*imag(r)
			noise += real(d)*real(d) + imag(d)*imag(d)
		}
	}
	if noise == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(sig/noise)
}

// TestFAMQ15TracksFloatFAM cross-checks the Q15 FAM against the float
// reference on the paper geometry: the converted surface must sit within
// a bounded SQNR of the float one and put the strongest cyclic feature in
// the same cell.
func TestFAMQ15TracksFloatFAM(t *testing.T) {
	band := q15TestBand(t, 2048, 7)
	p := scf.Params{K: 256, M: 64}
	ref, _, err := (FAM{Params: p, Workers: 1}).Estimate(band)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := (FAMQ15{Params: p, Workers: 1}).Estimate(band)
	if err != nil {
		t.Fatal(err)
	}
	if sqnr := surfaceSQNR(ref, got); sqnr < 40 {
		t.Errorf("FAM-Q15 surface SQNR = %.1f dB, want >= 40", sqnr)
	}
	// The real BPSK band's features come in mirrored ±f pairs of equal
	// magnitude; quantisation may break that tie the other way, so the
	// peak is compared up to the mirror.
	rf, ra, _ := ref.MaxFeature(true)
	gf, ga, _ := got.MaxFeature(true)
	if abs(rf) != abs(gf) || ra != ga {
		t.Errorf("FAM-Q15 peak feature (%d,%d), float FAM (%d,%d)", gf, ga, rf, ra)
	}
	if stats.Cycles <= 0 {
		t.Errorf("FAM-Q15 modeled cycles = %d, want > 0", stats.Cycles)
	}
	if stats.FFTMults == 0 || stats.DSCFMults == 0 {
		t.Errorf("FAM-Q15 mult counts empty: %+v", stats)
	}
}

// TestSSCAQ15TracksFloatSSCA is the SSCA cross-check on the same band.
func TestSSCAQ15TracksFloatSSCA(t *testing.T) {
	band := q15TestBand(t, 2048, 7)
	p := scf.Params{K: 256, M: 64}
	ref, _, err := (SSCA{Params: p, Workers: 1}).Estimate(band)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := (SSCAQ15{Params: p, Workers: 1}).Estimate(band)
	if err != nil {
		t.Fatal(err)
	}
	if sqnr := surfaceSQNR(ref, got); sqnr < 40 {
		t.Errorf("SSCA-Q15 surface SQNR = %.1f dB, want >= 40", sqnr)
	}
	rf, ra, _ := ref.MaxFeature(true)
	gf, ga, _ := got.MaxFeature(true)
	if abs(rf) != abs(gf) || ra != ga {
		t.Errorf("SSCA-Q15 peak feature (%d,%d), float SSCA (%d,%d)", gf, ga, rf, ra)
	}
	if stats.Cycles <= 0 {
		t.Errorf("SSCA-Q15 modeled cycles = %d, want > 0", stats.Cycles)
	}
}

// TestQ15BitExactAcrossWorkersAndRuns: the acceptance criterion — the
// Q15 surfaces (words, exponent, gain) are identical for any Workers
// setting and across repeated runs.
func TestQ15BitExactAcrossWorkersAndRuns(t *testing.T) {
	band := q15TestBand(t, 2048, 11)
	p := scf.Params{K: 256, M: 64}
	famRef, _, err := (FAMQ15{Params: p, Workers: 1}).EstimateQ15(band)
	if err != nil {
		t.Fatal(err)
	}
	sscaRef, _, err := (SSCAQ15{Params: p, Workers: 1}).EstimateQ15(band)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 1, 2, 3, 7} {
		qf, _, err := (FAMQ15{Params: p, Workers: w}).EstimateQ15(band)
		if err != nil {
			t.Fatal(err)
		}
		if ok, diff := famRef.Equal(qf); !ok {
			t.Errorf("FAM-Q15 Workers=%d differs: %s", w, diff)
		}
		qs, _, err := (SSCAQ15{Params: p, Workers: w}).EstimateQ15(band)
		if err != nil {
			t.Fatal(err)
		}
		if ok, diff := sscaRef.Equal(qs); !ok {
			t.Errorf("SSCA-Q15 Workers=%d differs: %s", w, diff)
		}
	}
}

// TestQ15FullScaleSaturation drives both backends with inputs far beyond
// the Q15 range at InputScale 1 (no backoff): the quantiser pins every
// sample at the rails, the BFP FFT must keep every stage in range
// (bin 0 of a constant rail input is the worst-case DFT growth, K·1),
// and the surfaces must come back finite and non-degenerate.
func TestQ15FullScaleSaturation(t *testing.T) {
	n := 2048
	p := scf.Params{K: 256, M: 64}
	// Constant +4: all energy at bin 0, the maximal coherent-growth FFT
	// input. Alternating ±4 (bin K/2, off-grid by construction) checks
	// the crest-heavy case for overflow-freedom only.
	constant := make([]complex128, n)
	crest := make([]complex128, n)
	for i := range constant {
		constant[i] = complex(4, 0)
		if i%2 == 1 {
			crest[i] = complex(-4, 0)
		} else {
			crest[i] = complex(4, 0)
		}
	}
	for _, est := range []scf.Estimator{
		FAMQ15{Params: p, InputScale: 1},
		SSCAQ15{Params: p, InputScale: 1},
	} {
		for name, x := range map[string][]complex128{"constant": constant, "crest": crest} {
			s, _, err := est.Estimate(x)
			if err != nil {
				t.Fatalf("%s on %s full-scale input: %v", est.Name(), name, err)
			}
			for _, row := range s.Data {
				for _, v := range row {
					if cmplx.IsNaN(v) || cmplx.IsInf(v) {
						t.Fatalf("%s produced non-finite cell %v on %s input", est.Name(), v, name)
					}
				}
			}
			if name == "constant" && s.TotalEnergy() == 0 {
				t.Errorf("%s surface all-zero on constant full-scale input", est.Name())
			}
		}
	}
}

// TestQ15UniformPolicyMatchesMontiumKernel: ScaleUniform must reproduce
// the Montium FFT kernel's unconditional halving bit-exactly — the
// FixedPlan.Forward path — and still yield a usable (if coarser) surface.
func TestQ15UniformPolicyMatchesMontiumKernel(t *testing.T) {
	band := q15TestBand(t, 2048, 3)
	p := scf.Params{K: 256, M: 64}
	ref, _, err := (FAM{Params: p, Workers: 1}).Estimate(band)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := (FAMQ15{Params: p, Workers: 1, Policy: fft.ScaleUniform}).Estimate(band)
	if err != nil {
		t.Fatal(err)
	}
	sqnr := surfaceSQNR(ref, got)
	if sqnr < 10 {
		t.Errorf("uniform-policy FAM-Q15 SQNR = %.1f dB, want >= 10 (coarse but usable)", sqnr)
	}
	bfp, _, err := (FAMQ15{Params: p, Workers: 1, Policy: fft.ScaleBFP}).Estimate(band)
	if err != nil {
		t.Fatal(err)
	}
	if bq := surfaceSQNR(ref, bfp); bq < sqnr {
		t.Errorf("BFP SQNR %.1f dB below uniform %.1f dB — scaling policy inverted?", bq, sqnr)
	}
}

// TestQ15ShortInputErrors mirrors the float estimators' too-short errors.
func TestQ15ShortInputErrors(t *testing.T) {
	short := make([]complex128, 100)
	if _, _, err := (FAMQ15{}).Estimate(short); err == nil {
		t.Error("FAM-Q15 accepted a 100-sample input")
	}
	if _, _, err := (SSCAQ15{}).Estimate(short); err == nil {
		t.Error("SSCA-Q15 accepted a 100-sample input")
	}
	if _, _, err := (FAMQ15{InputScale: 2}).Estimate(make([]complex128, 4096)); err == nil {
		t.Error("FAM-Q15 accepted InputScale=2")
	}
}
