package fam

import (
	"fmt"
	"math/cmplx"
	"runtime"
	"sync"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/scf"
)

// SSCA is the Strip Spectral Correlation Analyzer estimator: a K-point
// channelizer sliding one sample at a time, each channel demodulate
// multiplied against the conjugate full-rate input, and one N-point
// strip FFT per channel. Channel k, strip bin q estimates the SCF at
// frequency f = k/(2K) - q/(2N) and cycle frequency α = k/K + q/N;
// surface cell (f, a) reads channel k = f+a at bin q = N·(a-f)/K.
//
// The strip length N must be a power of two and a multiple of K so that
// every grid cell lands exactly on a strip bin; both hold automatically
// for any power of two N >= K. The zero value estimates with the paper's
// geometry (K=256, M=64) and picks the largest N the input affords.
type SSCA struct {
	// Params configures the channelizer and grid. K is the channelizer
	// size, M the surface half-extent, Window the channelizer analysis
	// window. Hop and Blocks are ignored: the SSCA channelizer advances
	// one sample per hop and smooths over the whole strip.
	Params scf.Params
	// N is the strip FFT length (power of two >= K). Zero selects the
	// largest power of two with N+K-1 <= len(x).
	N int
	// Workers bounds the goroutines computing strips concurrently.
	// 0 means runtime.GOMAXPROCS(0); 1 forces the serial path. Strips
	// are independent and each is computed by exactly one worker, so
	// every worker count produces bit-identical surfaces.
	Workers int
}

// Name implements scf.Estimator.
func (SSCA) Name() string { return "ssca" }

// MinSamples returns the shortest input Estimate accepts for the
// configured geometry: a K-length strip needs 2K-1 samples.
func (e SSCA) MinSamples() int {
	p := famDefaults(e.Params, 1)
	n := e.N
	if n < p.K {
		n = p.K
	}
	return n + p.K - 1
}

// Estimate implements scf.Estimator.
func (e SSCA) Estimate(x []complex128) (*scf.Surface, *scf.Stats, error) {
	p := famDefaults(e.Params, 1)
	p.Hop = 1
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	n := e.N
	if n == 0 {
		n = pow2Floor(len(x) - p.K + 1)
	} else if n < p.K {
		return nil, nil, fmt.Errorf("fam: SSCA strip length N=%d must be >= K=%d", n, p.K)
	}
	if n < p.K {
		return nil, nil, needSamples("SSCA", 2*p.K-1, len(x))
	}
	if !fft.IsPow2(n) {
		return nil, nil, fmt.Errorf("fam: SSCA strip length N=%d must be a power of two", n)
	}
	if len(x) < n+p.K-1 {
		return nil, nil, needSamples("SSCA", n+p.K-1, len(x))
	}
	var win []float64
	var err error
	if p.Window != fft.Rectangular {
		if win, err = fft.Window(p.Window, p.K); err != nil {
			return nil, nil, err
		}
	}
	ch, err := channelize(x, p.K, 1, n, win)
	if err != nil {
		return nil, nil, err
	}
	planN, err := fft.PlanFor(n)
	if err != nil {
		return nil, nil, err
	}
	roots, err := fft.Roots(n)
	if err != nil {
		return nil, nil, err
	}
	// One strip per channel the grid addresses: strip k is the N-point
	// FFT of x_k(m)·conj(x(m+K/2)). The conjugate factor is aligned with
	// the channelizer window centre so the kernel's group-delay phase
	// e^{j2πδ(K-1)/2} is constant along each strip bin's diagonal instead
	// of rotating in-bin contributions into cancellation; the residual
	// per-bin constant e^{j2πq(K/2)/N} is divided out — by indexing the
	// cached roots table — to keep cell phases aligned with the direct
	// method. The conjugated centre-shifted input is shared by every
	// strip, so it is formed once here rather than per strip.
	centre := p.K / 2
	xc := make([]complex128, n)
	for i := range xc {
		xc[i] = cmplx.Conj(x[i+centre])
	}
	m := p.M - 1
	// The rows the surface holds: all of [-m, m], or the candidate set
	// (±a plus 0) when alpha pruning is on. SSCA computes each row
	// directly — its strips are not Hermitian-mirrorable — so pruning
	// keeps both signs explicitly.
	rowAlphas := p.SurfaceAlphas()
	if rowAlphas == nil {
		rowAlphas = make([]int, 2*m+1)
		for i := range rowAlphas {
			rowAlphas[i] = i - m
		}
	}
	// The held rows address channels k = f+a for f in [-m, m]: every
	// residue of [a-m, a+m] mod K per row a, computed up front so the
	// independent strips can be fanned out across bounded workers. With
	// pruning only the strips whose cycle frequencies intersect the
	// candidate rows are ever computed.
	needed := make([]int, 0, 4*m+1)
	seen := make([]bool, p.K)
	for _, a := range rowAlphas {
		for f := -m; f <= m; f++ {
			if k := fft.BinIndex(p.K, f+a); !seen[k] {
				seen[k] = true
				needed = append(needed, k)
			}
		}
	}
	strips := make([][]complex128, p.K)
	scells := make([]complex128, len(needed)*n)
	for _, k := range needed {
		strips[k], scells = scells[:n], scells[n:]
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(needed) {
		workers = len(needed)
	}
	stripInto := func(k int, prod []complex128) error {
		cs := ch[k]
		for i := 0; i < n; i++ {
			prod[i] = cs[i] * xc[i]
		}
		u := strips[k]
		if err := planN.Forward(u, prod); err != nil {
			return err
		}
		derotate(u, roots, centre)
		return nil
	}
	if workers <= 1 {
		prodBuf := fft.GetScratch(n)
		for _, k := range needed {
			if err := stripInto(k, *prodBuf); err != nil {
				fft.PutScratch(prodBuf)
				return nil, nil, err
			}
		}
		fft.PutScratch(prodBuf)
	} else {
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				prodBuf := fft.GetScratch(n)
				defer fft.PutScratch(prodBuf)
				for i := w; i < len(needed); i += workers {
					if err := stripInto(needed[i], *prodBuf); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, nil, err
			}
		}
	}
	s := scf.NewSurfaceFor(p)
	inv := complex(1/float64(n), 0)
	for i, a := range rowAlphas {
		row := s.Data[i]
		for f := -m; f <= m; f++ {
			u := strips[fft.BinIndex(p.K, f+a)]
			q := fft.BinIndex(n, n/p.K*(a-f))
			row[f+m] = u[q] * inv
		}
	}
	stats := &scf.Stats{
		Blocks:    n,
		FFTMults:  n*fft.ComplexMults(p.K) + len(needed)*fft.ComplexMults(n),
		DSCFMults: n*p.K + len(needed)*n,
	}
	return s, stats, nil
}

// derotate divides the per-bin centre-shift phase e^{-j2πq·centre/n} out
// of a strip transform by indexing the cached roots table. The exponent
// (q·centre) mod n advances by centre per bin and n (= len(u) = len(roots))
// is a power of two, so the reduction is a masked add — no per-bin
// multiply, modulo or table-index recomputation, and no allocation. The
// hoisted indexing reads exactly the root the naive roots[(q·centre)%n]
// lookup would, so the derotated strips are bit-identical to it (guarded
// by TestSSCADerotateGolden).
func derotate(u, roots []complex128, centre int) {
	mask := len(roots) - 1
	idx := 0
	for q := range u {
		u[q] *= roots[idx]
		idx = (idx + centre) & mask
	}
}

// WithAlphaCandidates implements scf.CandidateEstimator.
func (e SSCA) WithAlphaCandidates(alphas []int) (scf.StreamingEstimator, error) {
	if len(alphas) == 0 {
		return e, nil
	}
	p := famDefaults(e.Params, 1)
	p.AlphaCandidates = append([]int(nil), alphas...)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	e.Params = p
	return e, nil
}

var _ scf.Estimator = SSCA{}
