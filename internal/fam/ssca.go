package fam

import (
	"fmt"
	"math"
	"math/cmplx"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/scf"
)

// SSCA is the Strip Spectral Correlation Analyzer estimator: a K-point
// channelizer sliding one sample at a time, each channel demodulate
// multiplied against the conjugate full-rate input, and one N-point
// strip FFT per channel. Channel k, strip bin q estimates the SCF at
// frequency f = k/(2K) - q/(2N) and cycle frequency α = k/K + q/N;
// surface cell (f, a) reads channel k = f+a at bin q = N·(a-f)/K.
//
// The strip length N must be a power of two and a multiple of K so that
// every grid cell lands exactly on a strip bin; both hold automatically
// for any power of two N >= K. The zero value estimates with the paper's
// geometry (K=256, M=64) and picks the largest N the input affords.
type SSCA struct {
	// Params configures the channelizer and grid. K is the channelizer
	// size, M the surface half-extent, Window the channelizer analysis
	// window. Hop and Blocks are ignored: the SSCA channelizer advances
	// one sample per hop and smooths over the whole strip.
	Params scf.Params
	// N is the strip FFT length (power of two >= K). Zero selects the
	// largest power of two with N+K-1 <= len(x).
	N int
}

// Name implements scf.Estimator.
func (SSCA) Name() string { return "ssca" }

// MinSamples returns the shortest input Estimate accepts for the
// configured geometry: a K-length strip needs 2K-1 samples.
func (e SSCA) MinSamples() int {
	p := famDefaults(e.Params, 1)
	n := e.N
	if n < p.K {
		n = p.K
	}
	return n + p.K - 1
}

// Estimate implements scf.Estimator.
func (e SSCA) Estimate(x []complex128) (*scf.Surface, *scf.Stats, error) {
	p := famDefaults(e.Params, 1)
	p.Hop = 1
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	n := e.N
	if n == 0 {
		n = pow2Floor(len(x) - p.K + 1)
	}
	if n < p.K {
		return nil, nil, needSamples("SSCA", 2*p.K-1, len(x))
	}
	if !fft.IsPow2(n) {
		return nil, nil, fmt.Errorf("fam: SSCA strip length N=%d must be a power of two", n)
	}
	if len(x) < n+p.K-1 {
		return nil, nil, needSamples("SSCA", n+p.K-1, len(x))
	}
	var win []float64
	var err error
	if p.Window != fft.Rectangular {
		if win, err = fft.Window(p.Window, p.K); err != nil {
			return nil, nil, err
		}
	}
	ch, err := channelize(x, p.K, 1, n, win)
	if err != nil {
		return nil, nil, err
	}
	planN, err := fft.NewPlan(n)
	if err != nil {
		return nil, nil, err
	}
	// One strip per channel the grid addresses, computed lazily: strip k
	// is the N-point FFT of x_k(m)·conj(x(m+K/2)). The conjugate factor
	// is aligned with the channelizer window centre so the kernel's
	// group-delay phase e^{j2πδ(K-1)/2} is constant along each strip
	// bin's diagonal instead of rotating in-bin contributions into
	// cancellation; the residual per-bin constant e^{j2πq(K/2)/N} is
	// divided out to keep cell phases aligned with the direct method.
	strips := make([][]complex128, p.K)
	prod := make([]complex128, n)
	centre := p.K / 2
	derot := make([]complex128, n)
	for q := range derot {
		ang := -2 * math.Pi * float64((q*centre)%n) / float64(n)
		derot[q] = cmplx.Exp(complex(0, ang))
	}
	stripOf := func(k int) ([]complex128, error) {
		if strips[k] != nil {
			return strips[k], nil
		}
		cs := ch[k]
		for m := 0; m < n; m++ {
			prod[m] = cs[m] * cmplx.Conj(x[m+centre])
		}
		u := make([]complex128, n)
		if err := planN.Forward(u, prod); err != nil {
			return nil, err
		}
		for q := range u {
			u[q] *= derot[q]
		}
		strips[k] = u
		return u, nil
	}
	s := scf.NewSurface(p.M)
	inv := complex(1/float64(n), 0)
	m := p.M - 1
	nStrips := 0
	for a := -m; a <= m; a++ {
		for f := -m; f <= m; f++ {
			k := fft.BinIndex(p.K, f+a)
			if strips[k] == nil {
				nStrips++
			}
			u, err := stripOf(k)
			if err != nil {
				return nil, nil, err
			}
			q := fft.BinIndex(n, n/p.K*(a-f))
			s.Add(f, a, u[q]*inv)
		}
	}
	stats := &scf.Stats{
		Blocks:    n,
		FFTMults:  n*fft.ComplexMults(p.K) + nStrips*fft.ComplexMults(n),
		DSCFMults: n*p.K + nStrips*n,
	}
	return s, stats, nil
}

var _ scf.Estimator = SSCA{}
