package fam

import (
	"testing"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/scf"
)

// requireStripsIdentical asserts every row a pruned surface holds is
// bit-identical to the same row of the full-plane surface — the
// tentpole's correctness contract for the channelizer estimators.
func requireStripsIdentical(t *testing.T, pruned, full *scf.Surface, label string) {
	t.Helper()
	if !pruned.Pruned() {
		t.Fatalf("%s: surface is not pruned", label)
	}
	for _, a := range pruned.AlphaValues() {
		got, want := pruned.Row(a), full.Row(a)
		for f := range want {
			if got[f] != want[f] {
				t.Fatalf("%s: row a=%d cell %d = %v, want %v (not bit-identical)",
					label, a, f, got[f], want[f])
			}
		}
	}
}

// TestPrunedEstimatorsMatchFull: for all three float estimators the
// alpha-pruned batch surface holds exactly the candidate rows (plus
// mirrors and a=0), every held cell bit-identical to the full-plane
// estimate, and the pruned accumulators reproduce the batch result
// bit-for-bit under arbitrary stream chunkings.
func TestPrunedEstimatorsMatchFull(t *testing.T) {
	alphas := []int{4, 8, 3, 10}
	cases := []struct {
		name    string
		e       scf.CandidateEstimator
		samples int
	}{
		{"direct", scf.Direct{Params: scf.Params{K: 64, M: 16, Blocks: 8}}, 64 * 8},
		{"fam", FAM{Params: scf.Params{K: 64, M: 16}}, 64 + 31*16},
		{"ssca", SSCA{Params: scf.Params{K: 64, M: 16}, N: 128}, 64 + 127},
	}
	chunkings := [][]int{{1, 17, 90}, {41}, {64 * 8}}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			x := streamBand(t, tc.samples, 21)
			full, fullStats, err := tc.e.Estimate(x)
			if err != nil {
				t.Fatal(err)
			}
			se, err := tc.e.WithAlphaCandidates(alphas)
			if err != nil {
				t.Fatal(err)
			}
			want, wantStats, err := se.Estimate(x)
			if err != nil {
				t.Fatal(err)
			}
			if got := len(want.Data); got != 9 {
				t.Fatalf("pruned surface holds %d rows, want 9", got)
			}
			requireStripsIdentical(t, want, full, "pruned batch")
			if wantStats.DSCFMults >= fullStats.DSCFMults {
				t.Fatalf("pruned DSCFMults=%d not below full %d",
					wantStats.DSCFMults, fullStats.DSCFMults)
			}
			for _, sizes := range chunkings {
				acc, err := se.NewAccumulator()
				if err != nil {
					t.Fatal(err)
				}
				pushChunks(t, acc, x, sizes)
				if !acc.Ready() {
					t.Fatalf("chunks %v: not Ready after full input", sizes)
				}
				got, _, err := acc.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				requireIdentical(t, got, want, "pruned snapshot")
				requireStripsIdentical(t, got, full, "pruned snapshot vs full plane")
			}
		})
	}
}

// TestWithAlphaCandidatesRejects: every candidate estimator surfaces the
// candidate-set validation errors and passes an empty set through as the
// unpruned estimator.
func TestWithAlphaCandidatesRejects(t *testing.T) {
	for _, e := range []scf.CandidateEstimator{
		scf.Direct{Params: scf.Params{K: 64, M: 16}},
		FAM{Params: scf.Params{K: 64, M: 16}},
		SSCA{Params: scf.Params{K: 64, M: 16}},
	} {
		for _, bad := range [][]int{{-1}, {16}, {7, 7}} {
			if _, err := e.WithAlphaCandidates(bad); err == nil {
				t.Fatalf("%s: WithAlphaCandidates(%v) accepted an invalid set", e.Name(), bad)
			}
		}
		se, err := e.WithAlphaCandidates(nil)
		if err != nil {
			t.Fatalf("%s: empty candidate set: %v", e.Name(), err)
		}
		x := streamBand(t, 64*8, 22)
		s, _, err := se.Estimate(x)
		if err != nil {
			t.Fatal(err)
		}
		if s.Pruned() {
			t.Fatalf("%s: empty candidate set produced a pruned surface", e.Name())
		}
	}
}

// TestQ15PrunedRowSets: the Q15 backends honour Params.AlphaCandidates —
// the quantised surface holds exactly the sparse row set, deterministic
// across runs and worker counts.
func TestQ15PrunedRowSets(t *testing.T) {
	p := scf.Params{K: 64, M: 16, AlphaCandidates: []int{4, 8, 3, 10}}
	held := p.SurfaceAlphas()
	x := streamBand(t, 64+31*16, 23)
	for _, tc := range []struct {
		name string
		est  func(workers int) (*scf.QSurface, error)
	}{
		{"fam-q15", func(w int) (*scf.QSurface, error) {
			q, _, err := FAMQ15{Params: p, Workers: w}.EstimateQ15(x)
			return q, err
		}},
		{"ssca-q15", func(w int) (*scf.QSurface, error) {
			q, _, err := SSCAQ15{Params: p, Workers: w, N: 128}.EstimateQ15(x[:64+127])
			return q, err
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			q, err := tc.est(1)
			if err != nil {
				t.Fatal(err)
			}
			if len(q.Alphas) != len(held) {
				t.Fatalf("holds rows %v, want %v", q.Alphas, held)
			}
			for i := range held {
				if q.Alphas[i] != held[i] {
					t.Fatalf("holds rows %v, want %v", q.Alphas, held)
				}
			}
			again, err := tc.est(4)
			if err != nil {
				t.Fatal(err)
			}
			if ok, why := q.Equal(again); !ok {
				t.Fatalf("not deterministic across worker counts: %s", why)
			}
		})
	}
}

// TestSSCADerotateGolden: the hoisted masked-add table walk reads
// exactly the root the naive roots[(q·centre) mod n] lookup selects, so
// derotated strips are bit-identical to the textbook indexing.
func TestSSCADerotateGolden(t *testing.T) {
	for _, n := range []int{8, 64, 256, 1024} {
		roots, err := fft.Roots(n)
		if err != nil {
			t.Fatal(err)
		}
		u := make([]complex128, n)
		for i := range u {
			u[i] = complex(float64(i%13)*0.17-0.5, float64(i%7)*0.29-0.9)
		}
		for _, centre := range []int{1, 4, n / 2} {
			want := make([]complex128, n)
			for q := range want {
				want[q] = u[q] * roots[(q*centre)%n]
			}
			got := append([]complex128(nil), u...)
			derotate(got, roots, centre)
			for q := range want {
				if got[q] != want[q] {
					t.Fatalf("n=%d centre=%d bin %d = %v, want %v (not bit-identical)",
						n, centre, q, got[q], want[q])
				}
			}
		}
	}
}

// TestSSCADerotateAllocs: the per-strip derotation allocates nothing —
// the guard for the hoisted index computation in the strip inner loop.
func TestSSCADerotateAllocs(t *testing.T) {
	roots, err := fft.Roots(256)
	if err != nil {
		t.Fatal(err)
	}
	u := make([]complex128, 256)
	for i := range u {
		u[i] = complex(float64(i), -float64(i))
	}
	if allocs := testing.AllocsPerRun(100, func() {
		derotate(u, roots, 128)
	}); allocs != 0 {
		t.Fatalf("derotate allocates %v objects per run, want 0", allocs)
	}
}
