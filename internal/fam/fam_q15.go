package fam

import (
	"runtime"
	"sync"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/fixed"
	"tiledcfd/internal/montium"
	"tiledcfd/internal/scf"
)

// FAMQ15 is the Q15 fixed-point FFT Accumulation Method: the same
// channelizer geometry as FAM, but every arithmetic step runs on the
// 16-bit saturating datapath of internal/fixed — input quantisation with
// backoff, a block-floating-point channelizer FFT with tracked per-hop
// exponents, Q15 downconversion, and wide (int64) cell accumulation
// reduced to a Q15 surface by one surface-level rounding. The result is
// bit-exact deterministic: identical across runs, across any Workers
// setting, and across every fixed.Kernels implementation (the SWAR and
// scalar kernels agree to the bit by contract).
//
// Estimate returns the surface converted exactly into float-FAM units
// (so detectors and cross-checks are drop-in); EstimateQ15 exposes the
// underlying Q15 words and exponent. Stats charge the Montium Table-1
// kernel cycle model on top of the canonical mult counts and record the
// kernel implementation that ran in Stats.Kernel.
type FAMQ15 struct {
	// Params configures the channelizer and grid exactly as for FAM
	// (K=256, M=K/4, Hop=K/4, rectangular window by default; Blocks is
	// ignored — the smoothing length is derived from the input).
	Params scf.Params
	// Workers bounds the goroutines evaluating surface rows concurrently.
	// 0 means runtime.GOMAXPROCS(0); 1 forces the serial path. All
	// arithmetic is integer and each cell is written exactly once, so
	// every worker count produces bit-identical surfaces.
	Workers int
	// InputScale is the peak amplitude the input is conditioned to
	// before Q15 quantisation — the word-level backoff of the paper's
	// section 4.1 dynamic-range argument, with the same semantics (and
	// the same 0.5 default, 6 dB of headroom) as core.Config.InputScale
	// on the platform path. Must lie in (0, 1]. The conditioning gain is
	// divided back out of the returned surface.
	InputScale float64
	// InputPeak, when positive, fixes the amplitude the conditioning
	// treats as full scale instead of measuring the batch peak — the
	// deterministic front end a fixed-gain ADC presents, and the setting
	// NewAccumulator requires (a streaming path cannot know the future
	// peak). Samples beyond InputPeak saturate at the Q15 rails. Zero
	// keeps the measured-peak batch behaviour.
	InputPeak float64
	// Policy selects the per-stage FFT scaling: fft.ScaleBFP (default,
	// block-floating-point with tracked exponents) or fft.ScaleUniform
	// (the Montium kernel's unconditional 1/2 per stage).
	Policy fft.ScalingPolicy
}

// Name implements scf.Estimator.
func (FAMQ15) Name() string { return "fam-q15" }

// MinSamples returns the shortest input Estimate accepts for the
// configured geometry: two channelizer hops.
func (e FAMQ15) MinSamples() int {
	p := famDefaults(e.Params, 0)
	return p.K + p.Hop
}

// Estimate implements scf.Estimator: the Q15 surface converted exactly
// into float-FAM units.
func (e FAMQ15) Estimate(x []complex128) (*scf.Surface, *scf.Stats, error) {
	q, stats, err := e.EstimateQ15(x)
	if err != nil {
		return nil, nil, err
	}
	return q.Float(), stats, nil
}

// EstimateQ15 computes the surface in its native Q15-plus-exponent form.
func (e FAMQ15) EstimateQ15(x []complex128) (*scf.QSurface, *scf.Stats, error) {
	p := famDefaults(e.Params, 0)
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	backoff, err := q15Backoff(e.InputScale)
	if err != nil {
		return nil, nil, err
	}
	peak, err := q15InputPeak(e.InputPeak)
	if err != nil {
		return nil, nil, err
	}
	hops := 0
	if len(x) >= p.K {
		hops = (len(x)-p.K)/p.Hop + 1
	}
	np := pow2Floor(hops)
	if np < 2 {
		return nil, nil, needSamples("FAM-Q15", p.K+p.Hop, len(x))
	}
	win, err := fft.FixedWindow(p.Window, p.K)
	if err != nil {
		return nil, nil, err
	}
	kern := fixed.Active()
	need := p.K + (np-1)*p.Hop
	xq, gain := quantiseQ15(x, need, backoff, peak)
	ch, err := channelizeQ15(kern, xq, p.K, p.Hop, np, win, e.Policy)
	if err != nil {
		return nil, nil, err
	}
	return famQ15Finish(p, kern, ch, gain, e.Workers, need)
}

// famQ15Finish runs the second stage of the Q15 FAM on an already
// channelized snapshot: exponent alignment, the bin-0 dot products for
// the non-negative cycle rows, the exact Hermitian mirror into the
// negative rows, and the single-rounding surface reduction. It is
// shared verbatim by the batch estimator and the streaming
// accumulator's Snapshot, which is what makes the two bit-identical.
// The channelizer is consumed (alignment shifts its rows in place).
func famQ15Finish(p scf.Params, kern fixed.Kernels, ch *q15Channelizer, gain float64, workers, need int) (*scf.QSurface, *scf.Stats, error) {
	np := len(ch.hops)
	emax, aligned := ch.alignExponents(kern)
	// Every cell (f, a) is the full-precision sum over hops of
	// ch[f+a](n)·conj(ch[f-a](n)) — the bin-0 dot product of the second
	// FFT, like the float path — accumulated int64 at Q30. Only the
	// rows a >= 0 are evaluated; row -a is the exact termwise conjugate
	// of row +a, so mirrorHermitian fills it at accumulator precision.
	m := p.M - 1
	grid := newAccGridFor(p)
	rowAlphas := grid.rowAlphas()
	posRows := make([]int, 0, m+1)
	for ai, a := range rowAlphas {
		if a >= 0 {
			posRows = append(posRows, ai)
		}
	}
	posAlphas := make([]int, len(posRows))
	for i, ai := range posRows {
		posAlphas[i] = rowAlphas[ai]
	}
	chv := ch.transposeWide(neededChannels(p.K, m, posAlphas, true))
	cols := 2*m + 1
	mask := p.K - 1
	rowJob := func(ai int) {
		a := rowAlphas[ai]
		row := grid.data[ai]
		pi := (a - m) & mask
		qi := (-a - m) & mask
		for fi := 0; fi < cols; fi++ {
			re, im := kern.DotConjQ30(chv[pi], chv[qi])
			row[fi] = fixed.CAcc{Re: re, Im: im}
			pi = (pi + 1) & mask
			qi = (qi + 1) & mask
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(posRows) {
		workers = len(posRows)
	}
	if workers <= 1 {
		for _, ai := range posRows {
			rowJob(ai)
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(posRows); i += workers {
					rowJob(posRows[i])
				}
			}(w)
		}
		wg.Wait()
	}
	grid.mirrorHermitian()
	// Products of two aligned channels carry 2^(2·emax); 1/np and the
	// squared input conditioning gain are the residual gain.
	s := grid.reduce(2*emax, surfaceGain(np, gain))
	cells := p.DSCFMults()
	stats := &scf.Stats{
		Blocks: np,
		// The canonical operation model matches float FAM: a full P-point
		// second FFT charged per cell even though only bin 0 is evaluated
		// (and the mirror halves the evaluated rows — a measured, not
		// modeled, saving).
		FFTMults:  np*fft.ComplexMults(p.K) + cells*fft.ComplexMults(np),
		DSCFMults: np*p.K + cells*np,
		Cycles: ch.fftCy +
			montium.MACKernelCycles(ch.macCy+int64(cells)*int64(np)) +
			montium.ReadDataCycles(int64(need)) +
			montium.AlignCycles(aligned+int64(cells)),
		Kernel: kern.Name(),
	}
	// The batch backend runs the whole pipeline on one modeled tile;
	// internal/tile schedules fill multi-tile breakdowns.
	stats.PerTile = []scf.TileCycles{{Tile: 0, Compute: stats.Cycles}}
	return s, stats, nil
}

var _ scf.Estimator = FAMQ15{}
