// White-box performance-invariant tests for the estimator hot paths:
// golden cross-checks that the optimized FAM/SSCA pipelines match the
// pre-optimization formulations, bit-identity between serial and parallel
// evaluation, and AllocsPerRun regressions asserting the per-hop and
// per-cell loops stay allocation-free.
package fam

import (
	"math"
	"math/cmplx"
	"testing"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/scf"
	"tiledcfd/internal/sig"
)

// goldenBand is a seeded BPSK-in-noise band: the signal class every
// cross-check in this package exercises.
func goldenBand(n int, seed uint64) []complex128 {
	rng := sig.NewRand(seed)
	src := sig.Mix{Sources: []sig.Source{
		&sig.BPSK{Amp: 1, Carrier: 8.0 / 64, SymbolLen: 8, Rng: rng},
		&sig.WGN{Sigma: 0.3, Rng: rng},
	}}
	return sig.Samples(&src, n)
}

// famReference evaluates FAM exactly as the pre-optimization code did:
// a full P-point second FFT per surface cell, reading bin 0, every row
// evaluated directly (no Hermitian mirroring).
func famReference(t *testing.T, x []complex128, p scf.Params) *scf.Surface {
	t.Helper()
	p = famDefaults(p, 0)
	hops := (len(x)-p.K)/p.Hop + 1
	np := pow2Floor(hops)
	var win []float64
	var err error
	if p.Window != fft.Rectangular {
		if win, err = fft.Window(p.Window, p.K); err != nil {
			t.Fatal(err)
		}
	}
	ch, err := channelize(x, p.K, p.Hop, np, win)
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := fft.NewPlan(np)
	if err != nil {
		t.Fatal(err)
	}
	s := scf.NewSurface(p.M)
	prod := make([]complex128, np)
	spec2 := make([]complex128, np)
	inv := complex(1/float64(np), 0)
	m := p.M - 1
	for a := -m; a <= m; a++ {
		for f := -m; f <= m; f++ {
			cp := ch[fft.BinIndex(p.K, f+a)]
			cm := ch[fft.BinIndex(p.K, f-a)]
			for n := 0; n < np; n++ {
				prod[n] = cp[n] * cmplx.Conj(cm[n])
			}
			if err := plan2.Forward(spec2, prod); err != nil {
				t.Fatal(err)
			}
			s.Add(f, a, spec2[0]*inv)
		}
	}
	return s
}

// sscaReference evaluates SSCA exactly as the pre-optimization code did:
// lazy per-strip allocation, per-sample conjugation of the shifted input,
// and cmplx.Exp derotation.
func sscaReference(t *testing.T, x []complex128, p scf.Params, n int) *scf.Surface {
	t.Helper()
	p = famDefaults(p, 1)
	p.Hop = 1
	var win []float64
	var err error
	if p.Window != fft.Rectangular {
		if win, err = fft.Window(p.Window, p.K); err != nil {
			t.Fatal(err)
		}
	}
	ch, err := channelize(x, p.K, 1, n, win)
	if err != nil {
		t.Fatal(err)
	}
	planN, err := fft.NewPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	strips := make([][]complex128, p.K)
	prod := make([]complex128, n)
	centre := p.K / 2
	derot := make([]complex128, n)
	for q := range derot {
		ang := -2 * math.Pi * float64((q*centre)%n) / float64(n)
		derot[q] = cmplx.Exp(complex(0, ang))
	}
	stripOf := func(k int) []complex128 {
		if strips[k] != nil {
			return strips[k]
		}
		cs := ch[k]
		for m := 0; m < n; m++ {
			prod[m] = cs[m] * cmplx.Conj(x[m+centre])
		}
		u := make([]complex128, n)
		if err := planN.Forward(u, prod); err != nil {
			t.Fatal(err)
		}
		for q := range u {
			u[q] *= derot[q]
		}
		strips[k] = u
		return u
	}
	s := scf.NewSurface(p.M)
	inv := complex(1/float64(n), 0)
	m := p.M - 1
	for a := -m; a <= m; a++ {
		for f := -m; f <= m; f++ {
			u := stripOf(fft.BinIndex(p.K, f+a))
			q := fft.BinIndex(n, n/p.K*(a-f))
			s.Add(f, a, u[q]*inv)
		}
	}
	return s
}

// surfacePeak returns the largest cell magnitude, used to scale golden
// tolerances.
func surfacePeak(s *scf.Surface) float64 {
	_, _, mag := s.MaxFeature(false)
	return mag
}

func TestFAMGoldenMatchesPreOptimization(t *testing.T) {
	const n = 2048
	x := goldenBand(n, 7)
	for _, p := range []scf.Params{
		{K: 64, M: 16},
		{K: 64, M: 16, Window: fft.Hamming},
		{K: 128, M: 32, Hop: 32},
	} {
		want := famReference(t, x, p)
		got, _, err := FAM{Params: p, Workers: 1}.Estimate(x)
		if err != nil {
			t.Fatal(err)
		}
		// The optimized path evaluates bin 0 as a dot product instead of
		// a full second FFT (different floating-point summation order),
		// so agreement is to rounding, scaled by the surface peak.
		tol := 1e-12 * (1 + surfacePeak(want))
		if d := scf.MaxAbsDiff(got, want); d > tol {
			t.Errorf("K=%d M=%d: optimized FAM differs from pre-optimization surface by %g (tol %g)", p.K, p.M, d, tol)
		}
	}
}

func TestSSCAGoldenMatchesPreOptimization(t *testing.T) {
	const n = 2048
	x := goldenBand(n, 8)
	for _, p := range []scf.Params{
		{K: 64, M: 16},
		{K: 64, M: 16, Window: fft.Hamming},
	} {
		want := sscaReference(t, x, p, 1024)
		got, _, err := SSCA{Params: p, N: 1024, Workers: 1}.Estimate(x)
		if err != nil {
			t.Fatal(err)
		}
		tol := 1e-12 * (1 + surfacePeak(want))
		if d := scf.MaxAbsDiff(got, want); d > tol {
			t.Errorf("K=%d M=%d: optimized SSCA differs from pre-optimization surface by %g (tol %g)", p.K, p.M, d, tol)
		}
	}
}

func TestFAMParallelBitIdenticalToSerial(t *testing.T) {
	x := goldenBand(4096, 9)
	p := scf.Params{K: 64, M: 16}
	serial, _, err := FAM{Params: p, Workers: 1}.Estimate(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		par, _, err := FAM{Params: p, Workers: workers}.Estimate(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial.Data {
			for j := range serial.Data[i] {
				if par.Data[i][j] != serial.Data[i][j] {
					t.Fatalf("workers=%d: cell [%d][%d] %v != serial %v", workers, i, j, par.Data[i][j], serial.Data[i][j])
				}
			}
		}
	}
}

func TestSSCAParallelBitIdenticalToSerial(t *testing.T) {
	x := goldenBand(2048, 10)
	p := scf.Params{K: 64, M: 16}
	serial, _, err := SSCA{Params: p, Workers: 1}.Estimate(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5} {
		par, _, err := SSCA{Params: p, Workers: workers}.Estimate(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial.Data {
			for j := range serial.Data[i] {
				if par.Data[i][j] != serial.Data[i][j] {
					t.Fatalf("workers=%d: cell [%d][%d] %v != serial %v", workers, i, j, par.Data[i][j], serial.Data[i][j])
				}
			}
		}
	}
}

// The FAM surface must be exactly Hermitian in α — the property the
// mirrored evaluation relies on.
func TestFAMSurfaceExactlyHermitian(t *testing.T) {
	x := goldenBand(2048, 11)
	s, _, err := FAM{Params: scf.Params{K: 64, M: 16}}.Estimate(x)
	if err != nil {
		t.Fatal(err)
	}
	if e := s.HermitianError(); e != 0 {
		t.Fatalf("FAM Hermitian error %g, want exact 0", e)
	}
}

// TestChannelizeSteadyStateAllocs asserts the channelizer's per-hop loop
// allocates nothing: total allocations must not grow with the number of
// hops (only the output backing array and its headers are allocated per
// call). A slack of 2 absorbs sync.Pool nondeterminism — the pool may
// drop its spec and window buffers at any GC (and randomly under -race),
// costing at most one reallocation each, while a per-hop leak would add
// ~60 allocations between the two measurements.
func TestChannelizeSteadyStateAllocs(t *testing.T) {
	x := goldenBand(4096, 12)
	win, err := fft.Window(fft.Hamming, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range [][]float64{nil, win} {
		allocs := func(blocks int) float64 {
			return testing.AllocsPerRun(10, func() {
				if _, err := channelize(x, 64, 16, blocks, w); err != nil {
					t.Fatal(err)
				}
			})
		}
		few, many := allocs(4), allocs(64)
		if many > few+2 {
			t.Errorf("windowed=%v: channelize allocations grow with hops: %v at 4 hops, %v at 64", w != nil, few, many)
		}
	}
}

// TestFAMRowAllocs asserts the per-cell evaluation (one whole surface row
// of bin-0 dot products) performs zero allocations.
func TestFAMRowAllocs(t *testing.T) {
	const k, m, np = 64, 16, 32
	x := goldenBand(64+31*16, 13)
	ch, err := channelize(x, k, 16, np, nil)
	if err != nil {
		t.Fatal(err)
	}
	chc := make([][]complex128, k)
	for v := range chc {
		chc[v] = make([]complex128, np)
		for n, c := range ch[v] {
			chc[v][n] = cmplx.Conj(c)
		}
	}
	row := make([]complex128, 2*m+1)
	if a := testing.AllocsPerRun(20, func() {
		famRow(row, ch, chc, k, 3, m, np)
	}); a != 0 {
		t.Errorf("famRow allocates %v times per row, want 0", a)
	}
}
