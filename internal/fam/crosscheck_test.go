// Cross-check tests: the time-smoothing estimators must agree with the
// paper's direct DSCF on where the strongest cyclic feature of a BPSK
// licensed user lies, and all three must reject a noise-only band at a
// threshold calibrated for a fixed false-alarm rate. Everything is
// seeded, so the assertions are deterministic.
package fam_test

import (
	"testing"

	"tiledcfd"
	"tiledcfd/internal/detect"
	"tiledcfd/internal/fam"
	"tiledcfd/internal/fft"
	"tiledcfd/internal/scf"
	"tiledcfd/internal/sig"
)

const (
	xcK      = 64        // spectrum size
	xcM      = 16        // grid half-extent
	xcN      = 16 * xcK  // band length: 16 integration blocks
	xcCar    = 8.0 / xcK // BPSK carrier -> doubled-carrier feature at a = ±8
	xcSymLen = 8
	xcSNR    = 10.0
)

// xcEstimators is the table every cross-check runs over: the direct
// method is the reference, FAM and SSCA must agree with it.
func xcEstimators() []scf.Estimator {
	p := scf.Params{K: xcK, M: xcM}
	pw := p
	pw.Window = fft.Hamming
	direct := p
	direct.Blocks = xcN / xcK
	return []scf.Estimator{
		scf.Direct{Params: direct},
		fam.FAM{Params: p},
		fam.FAM{Params: pw},
		fam.SSCA{Params: p},
		fam.SSCA{Params: pw},
	}
}

// profilePeak returns the |a| of the strongest cycle-frequency profile
// value over |a| >= 2 — the quantity the blind detector thresholds.
func profilePeak(t *testing.T, s *scf.Surface) int {
	t.Helper()
	prof := s.AlphaProfile()
	best, bestA := -1.0, 0
	for ai, v := range prof {
		a := ai - (s.M - 1)
		if (a >= 2 || a <= -2) && v > best {
			best, bestA = v, a
		}
	}
	if bestA < 0 {
		bestA = -bestA
	}
	return bestA
}

func TestEstimatorsAgreeOnBPSKFeature(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		band, err := tiledcfd.NewBPSKBand(xcN, xcCar, xcSymLen, xcSNR, seed)
		if err != nil {
			t.Fatal(err)
		}
		ref, _, err := xcEstimators()[0].Estimate(band)
		if err != nil {
			t.Fatal(err)
		}
		refF, refA, _ := ref.MaxFeature(true)
		if refA < 0 {
			refA = -refA
		}
		refProfA := profilePeak(t, ref)
		if refProfA != int(xcCar*xcK) { // doubled carrier: a = carrier bin
			t.Fatalf("seed %d: direct reference profile peak |a|=%d, want %d", seed, refProfA, int(xcCar*xcK))
		}
		for _, e := range xcEstimators()[1:] {
			s, _, err := e.Estimate(band)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, e.Name(), err)
			}
			if got := profilePeak(t, s); got != refProfA {
				t.Errorf("seed %d %s: profile peak |a|=%d, direct says %d", seed, e.Name(), got, refProfA)
			}
			f, a, _ := s.MaxFeature(true)
			if a < 0 {
				a = -a
			}
			if a != refA {
				t.Errorf("seed %d %s: cell peak |a|=%d, direct says %d", seed, e.Name(), a, refA)
			}
			// The doubled-carrier feature is a short ridge across f
			// centred at 0; estimators may peak a few bins apart along
			// it (the smoothing kernels differ).
			if d := f - refF; d < -4 || d > 4 {
				t.Errorf("seed %d %s: cell peak f=%d, direct says %d (|Δf| > 4)", seed, e.Name(), f, refF)
			}
		}
	}
}

func TestEstimatorsRejectNoiseAtCalibratedThreshold(t *testing.T) {
	noiseScenario := func(rng *sig.Rand, present bool) []complex128 {
		return sig.Samples(&sig.WGN{Sigma: 0.5, Real: true, Rng: rng}, xcN)
	}
	band, err := tiledcfd.NewBPSKBand(xcN, xcCar, xcSymLen, xcSNR, 11)
	if err != nil {
		t.Fatal(err)
	}
	noise, err := tiledcfd.NewNoiseBand(xcN, 0.25, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range xcEstimators() {
		d := detect.CFDDetector{MinAbsA: 2, Estimator: e}
		th, err := detect.CalibrateThreshold(d, noiseScenario, 25, 0.04, 99)
		if err != nil {
			t.Fatalf("%s: calibrate: %v", d.Name(), err)
		}
		sig1, err := d.Statistic(band)
		if err != nil {
			t.Fatal(err)
		}
		if sig1 <= th {
			t.Errorf("%s: BPSK band statistic %.4f below calibrated threshold %.4f", d.Name(), sig1, th)
		}
		sig0, err := d.Statistic(noise)
		if err != nil {
			t.Fatal(err)
		}
		if sig0 > th {
			t.Errorf("%s: noise band statistic %.4f above calibrated threshold %.4f", d.Name(), sig0, th)
		}
	}
}
