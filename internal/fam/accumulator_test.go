package fam

import (
	"reflect"
	"testing"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/scf"
	"tiledcfd/internal/sig"
)

// streamBand synthesises a deterministic BPSK-in-noise band.
func streamBand(t *testing.T, n int, seed uint64) []complex128 {
	t.Helper()
	rng := sig.NewRand(seed)
	b := &sig.BPSK{Amp: 1, Carrier: 0.125, SymbolLen: 8, Rng: rng}
	x := sig.Samples(b, n)
	noisy, _, err := sig.AddAWGN(x, 10, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	return noisy
}

// pushChunks feeds x into acc in chunks of the given sizes, cycling.
func pushChunks(t *testing.T, acc scf.Accumulator, x []complex128, sizes []int) {
	t.Helper()
	i, c := 0, 0
	for i < len(x) {
		n := sizes[c%len(sizes)]
		c++
		if i+n > len(x) {
			n = len(x) - i
		}
		if err := acc.Push(x[i : i+n]); err != nil {
			t.Fatalf("Push at %d: %v", i, err)
		}
		i += n
	}
}

// requireIdentical asserts two surfaces are bit-identical.
func requireIdentical(t *testing.T, got, want *scf.Surface, label string) {
	t.Helper()
	if got.M != want.M {
		t.Fatalf("%s: extent M=%d vs %d", label, got.M, want.M)
	}
	for i := range want.Data {
		for j := range want.Data[i] {
			if got.Data[i][j] != want.Data[i][j] {
				t.Fatalf("%s: cell [%d][%d] = %v, want %v (not bit-identical)",
					label, i, j, got.Data[i][j], want.Data[i][j])
			}
		}
	}
}

// requireSameStats asserts the modeled work counts match.
func requireSameStats(t *testing.T, got, want *scf.Stats) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stats %+v, want %+v", got, want)
	}
}

// TestFAMAccumulatorMatchesBatch: streaming FAM snapshots are
// bit-identical to batch Estimate over the concatenation, for input
// lengths both at and between power-of-two hop counts, across hop and
// window geometries.
func TestFAMAccumulatorMatchesBatch(t *testing.T) {
	cases := []struct {
		name    string
		e       FAM
		samples int
		chunks  []int
	}{
		// K=64, hop=16 (default K/4): hops = (n-64)/16+1.
		{"pow2-hops", FAM{Params: scf.Params{K: 64, M: 16}}, 64 + 31*16, []int{1, 9, 64}},
		{"ragged-hops", FAM{Params: scf.Params{K: 64, M: 16}}, 64 + 44*16 + 7, []int{13, 57}},
		{"custom-hop", FAM{Params: scf.Params{K: 64, M: 16, Hop: 32}}, 64 + 21*32, []int{200}},
		{"hamming", FAM{Params: scf.Params{K: 64, M: 8, Window: fft.Hamming}}, 64 + 17*16, []int{31}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			x := streamBand(t, tc.samples, 5)
			want, wantStats, err := tc.e.Estimate(x)
			if err != nil {
				t.Fatal(err)
			}
			acc, err := tc.e.NewAccumulator()
			if err != nil {
				t.Fatal(err)
			}
			pushChunks(t, acc, x, tc.chunks)
			if !acc.Ready() {
				t.Fatal("not Ready after full input")
			}
			got, gotStats, err := acc.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, got, want, "snapshot")
			requireSameStats(t, gotStats, wantStats)
		})
	}
}

// TestFAMAccumulatorRepeatedSnapshots: snapshots as the stream grows
// track the batch result over the prefix, and Reset restarts cleanly.
func TestFAMAccumulatorRepeatedSnapshots(t *testing.T) {
	e := FAM{Params: scf.Params{K: 64, M: 16}}
	x := streamBand(t, 64+63*16, 6)
	acc, err := e.NewAccumulator()
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{64 + 16, 64 + 7*16 + 3, 64 + 40*16, len(x)} {
		prev := acc.Samples()
		pushChunks(t, acc, x[prev:cut], []int{25})
		got, _, err := acc.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := e.Estimate(x[:cut])
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, got, want, "prefix snapshot")
	}
	acc.Reset()
	if acc.Ready() || acc.Samples() != 0 {
		t.Fatalf("Reset left Ready=%v Samples=%d", acc.Ready(), acc.Samples())
	}
	y := streamBand(t, 64+15*16, 7)
	pushChunks(t, acc, y, []int{11})
	got, _, err := acc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := e.Estimate(y)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, got, want, "post-reset")
}

// TestSSCAAccumulatorMatchesBatch: streaming SSCA snapshots are
// bit-identical to batch Estimate, with N both derived and fixed.
func TestSSCAAccumulatorMatchesBatch(t *testing.T) {
	cases := []struct {
		name    string
		e       SSCA
		samples int
		chunks  []int
	}{
		// K=64: derived N = pow2floor(samples-63).
		{"derived-n", SSCA{Params: scf.Params{K: 64, M: 16}}, 64 + 255, []int{1, 17, 90}},
		{"ragged-n", SSCA{Params: scf.Params{K: 64, M: 16}}, 64 + 300, []int{41}},
		{"fixed-n", SSCA{Params: scf.Params{K: 64, M: 16}, N: 128}, 64 + 127, []int{23, 5}},
		{"hamming", SSCA{Params: scf.Params{K: 64, M: 8, Window: fft.Hann}, N: 128}, 64 + 127, []int{64}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			x := streamBand(t, tc.samples, 9)
			want, wantStats, err := tc.e.Estimate(x)
			if err != nil {
				t.Fatal(err)
			}
			acc, err := tc.e.NewAccumulator()
			if err != nil {
				t.Fatal(err)
			}
			pushChunks(t, acc, x, tc.chunks)
			if !acc.Ready() {
				t.Fatal("not Ready after full input")
			}
			got, gotStats, err := acc.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, got, want, "snapshot")
			requireSameStats(t, gotStats, wantStats)
		})
	}
}

// TestSSCAAccumulatorFixedNBounded: with N fixed, pushing far past the
// strip length neither grows state nor changes the snapshot.
func TestSSCAAccumulatorFixedNBounded(t *testing.T) {
	e := SSCA{Params: scf.Params{K: 64, M: 16}, N: 128}
	need := 128 + 63
	x := streamBand(t, 4*need, 10)
	want, _, err := e.Estimate(x[:need])
	if err != nil {
		t.Fatal(err)
	}
	acc, err := e.NewAccumulator()
	if err != nil {
		t.Fatal(err)
	}
	pushChunks(t, acc, x, []int{97})
	got, _, err := acc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, got, want, "overfed fixed-N snapshot")
	sa := acc.(*sscaAccumulator)
	for i := range sa.prods {
		if len(sa.prods[i]) != 128 {
			t.Fatalf("strip %d grew to %d entries (want exactly N=128)", i, len(sa.prods[i]))
		}
	}
}

// TestAccumulatorNotReady: both estimators refuse snapshots before their
// minimum smoothing length arrives.
func TestAccumulatorNotReady(t *testing.T) {
	for _, e := range []scf.StreamingEstimator{
		FAM{Params: scf.Params{K: 64, M: 16}},
		SSCA{Params: scf.Params{K: 64, M: 16}},
	} {
		acc, err := e.NewAccumulator()
		if err != nil {
			t.Fatal(err)
		}
		if err := acc.Push(make([]complex128, 70)); err != nil {
			t.Fatal(err)
		}
		if acc.Ready() {
			t.Fatalf("%s: Ready with 70 samples", acc.Name())
		}
		if _, _, err := acc.Snapshot(); err == nil {
			t.Fatalf("%s: Snapshot succeeded with 70 samples", acc.Name())
		}
	}
}
