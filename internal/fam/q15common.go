package fam

import (
	"fmt"
	"math"
	"math/bits"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/fixed"
	"tiledcfd/internal/montium"
	"tiledcfd/internal/scf"
)

// defaultBackoff is the input conditioning applied before Q15
// quantisation when the estimator's InputScale is zero: half scale,
// leaving 6 dB of headroom — the same default core.Run applies on the
// platform path.
const defaultBackoff = 0.5

// q15Backoff validates and defaults an InputScale field.
func q15Backoff(scale float64) (float64, error) {
	if scale == 0 {
		return defaultBackoff, nil
	}
	if scale < 0 || scale > 1 || math.IsNaN(scale) {
		return 0, fmt.Errorf("fam: InputScale %v outside (0, 1]", scale)
	}
	return scale, nil
}

// quantiseQ15 conditions the first n samples of x so the peak component
// sits at backoff, then rounds to Q15 — the same front door core.Run
// applies on the platform path (InputScale semantics). It returns the
// quantised samples and the gain actually applied, which the caller
// divides back out of the surface so fixed results stay in float-path
// units. A zero input returns gain 0 (the surface is exactly zero).
func quantiseQ15(x []complex128, n int, backoff float64) ([]fixed.Complex, float64) {
	peak := 0.0
	for i := 0; i < n; i++ {
		if v := math.Abs(real(x[i])); v > peak {
			peak = v
		}
		if v := math.Abs(imag(x[i])); v > peak {
			peak = v
		}
	}
	out := make([]fixed.Complex, n)
	if peak == 0 {
		return out, 0
	}
	gain := backoff / peak
	g := complex(gain, 0)
	for i := range out {
		out[i] = fixed.CFromFloat(x[i] * g)
	}
	return out, gain
}

// surfaceGain folds the input conditioning gain and the smoothing-length
// normalisation into the QSurface residual gain: 1/(smooth·gain²), or 0
// for an all-zero input (gain 0).
func surfaceGain(smooth int, gain float64) float64 {
	if gain == 0 {
		return 0
	}
	return 1 / (float64(smooth) * gain * gain)
}

// q15Channelizer is the fixed-point twin of channelize: blocks hops of a
// k-point windowed block-floating-point FFT over xq, hop samples apart,
// each channel downconverted by the Q15 roots table. ch[v][n] is channel
// v of hop n, valued DFT_channel/2^exps[n] (each hop carries its own
// tracked exponent). aligned reports how many values a subsequent
// exponent alignment to max(exps) must touch (for cycle accounting).
type q15Channelizer struct {
	ch    [][]fixed.Complex
	exps  []int
	win   []fixed.Q15
	fftCy int64 // modeled FFT kernel cycles spent
	macCy int64 // modeled complex-MAC cycles spent (window + downconversion)
}

// channelizeQ15 runs the fixed channelizer. The caller guarantees
// len(xq) >= k+(blocks-1)·hop.
func channelizeQ15(xq []fixed.Complex, k, hop, blocks int, win []fixed.Q15, policy fft.ScalingPolicy) (*q15Channelizer, error) {
	if win != nil && len(win) != k {
		return nil, fmt.Errorf("fam: window length %d != channelizer size %d", len(win), k)
	}
	plan, err := fft.NewFixedPlan(k)
	if err != nil {
		return nil, err
	}
	roots, err := fft.FixedRoots(k)
	if err != nil {
		return nil, err
	}
	c := &q15Channelizer{
		ch:   make([][]fixed.Complex, k),
		exps: make([]int, blocks),
		win:  win,
	}
	cells := make([]fixed.Complex, k*blocks)
	for v := range c.ch {
		c.ch[v], cells = cells[:blocks], cells[blocks:]
	}
	spec := make([]fixed.Complex, k)
	for n := 0; n < blocks; n++ {
		start := n * hop
		block := xq[start : start+k]
		if win != nil {
			for i := range spec {
				spec[i] = fixed.CScale(block[i], win[i])
			}
			c.macCy += int64(k)
		} else {
			copy(spec, block)
		}
		exp, err := plan.ForwardScaled(spec, spec, policy)
		if err != nil {
			return nil, err
		}
		c.exps[n] = exp
		// Downconvert with the absolute-time reference e^{-j2π·start·v/k},
		// exactly as the float channelizer, but through the Q15 roots.
		step := start & (k - 1)
		idx := 0
		for v := 0; v < k; v++ {
			c.ch[v][n] = fixed.CMul(spec[v], roots[idx])
			idx = (idx + step) & (k - 1)
		}
		c.fftCy += montiumFFTCycles(k)
		c.macCy += int64(k)
	}
	return c, nil
}

// alignExponents renormalises every hop to the common exponent
// max(exps): hop n's channel values are right-shifted by emax-exps[n]
// with round-half-up, after which every channel value is DFT/2^emax.
// It returns emax and the number of values shifted (the alignment pass's
// cycle cost). The shift order is fixed (hops ascending, channels
// ascending), so the pass is bit-deterministic.
func (c *q15Channelizer) alignExponents() (emax int, shifted int64) {
	for _, e := range c.exps {
		if e > emax {
			emax = e
		}
	}
	for n, e := range c.exps {
		d := uint(emax - e)
		if d == 0 {
			continue
		}
		for v := range c.ch {
			c.ch[v][n] = fixed.CRShiftRound(c.ch[v][n], d)
		}
		shifted += int64(len(c.ch))
	}
	return emax, shifted
}

// accGrid is a full-precision int64 accumulator grid (Q30 units), the
// wide intermediate both fixed backends reduce to a QSurface with one
// surface-level block-floating-point rounding. Under alpha pruning the
// grid holds only the candidate rows (alphas non-nil, data[i] the row
// for a = alphas[i]); the reduction then derives the surface exponent
// from the computed cells alone, so a pruned QSurface is bit-exact
// deterministic and converts exactly, but its raw words need not match
// a full-plane run whose peak lives on an uncomputed row.
type accGrid struct {
	m      int
	alphas []int          // nil = dense rows a in [-(m-1), m-1]
	data   [][]fixed.CAcc // data[rowIndex][f+m-1]
}

func newAccGrid(m int) *accGrid {
	n := 2*m - 1
	data := make([][]fixed.CAcc, n)
	cells := make([]fixed.CAcc, n*n)
	for i := range data {
		data[i], cells = cells[:n], cells[n:]
	}
	return &accGrid{m: m, data: data}
}

// newAccGridFor sizes the grid for p: dense, or pruned to p's candidate
// row set.
func newAccGridFor(p scf.Params) *accGrid {
	alphas := p.SurfaceAlphas()
	if alphas == nil {
		return newAccGrid(p.M)
	}
	n := 2*p.M - 1
	data := make([][]fixed.CAcc, len(alphas))
	cells := make([]fixed.CAcc, len(alphas)*n)
	for i := range data {
		data[i], cells = cells[:n], cells[n:]
	}
	return &accGrid{m: p.M, alphas: alphas, data: data}
}

// rowAlphas returns the offsets a of the grid's rows, in row order.
func (g *accGrid) rowAlphas() []int {
	if g.alphas != nil {
		return g.alphas
	}
	out := make([]int, 2*g.m-1)
	for i := range out {
		out[i] = i - (g.m - 1)
	}
	return out
}

// reduce converts the grid to a QSurface: the peak component picks the
// smallest right-shift landing it in the top half of the Q15 range
// (left-shifting weak surfaces up instead), every cell is rounded once at
// that scale, and the net exponent is folded into QSurface.Exp so that
//
//	float cell = q15 cell · 2^Exp · gain
//
// where the accumulators hold float·2^(30-accExp)/gain (accExp the
// exponent the caller's products carry, e.g. 2·emax for FAM). The single
// rounding point keeps the reduction bit-exact regardless of how the
// accumulators were filled in parallel.
func (g *accGrid) reduce(accExp int, gain float64) *scf.QSurface {
	var amax int64
	for _, row := range g.data {
		for _, a := range row {
			if v := a.Re; v > amax {
				amax = v
			} else if -v > amax {
				amax = -v
			}
			if v := a.Im; v > amax {
				amax = v
			} else if -v > amax {
				amax = -v
			}
		}
	}
	var out *scf.QSurface
	if g.alphas != nil {
		out = scf.NewSparseQSurface(g.m, g.alphas)
	} else {
		out = scf.NewQSurface(g.m)
	}
	out.Gain = gain
	if amax == 0 {
		out.Exp = accExp - 30
		return out
	}
	// sh (may be negative) brings amax into [2^14, 2^15): bitlen-15.
	sh := bits.Len64(uint64(amax)) - 15
	for ai, row := range g.data {
		for fi, a := range row {
			out.Data[ai][fi] = fixed.Complex{
				Re: shiftToQ15(a.Re, sh),
				Im: shiftToQ15(a.Im, sh),
			}
		}
	}
	// Cell integer c represents acc/2^sh; acc = float·2^(30-accExp)/gain,
	// and the Q15 value is c/2^15, so float = q15 · 2^(sh+15-30+accExp) · gain.
	out.Exp = sh + accExp - 15
	return out
}

// shiftToQ15 rounds v/2^sh into Q15 with round-half-up and saturation;
// negative sh left-shifts exactly.
func shiftToQ15(v int64, sh int) fixed.Q15 {
	if sh <= 0 {
		return fixed.SaturateInt(v << uint(-sh))
	}
	return fixed.SaturateInt((v + 1<<(uint(sh)-1)) >> uint(sh))
}

// montiumFFTCycles charges one FFT kernel run plus the reshuffling pass
// that feeds it, the two per-transform rows of the paper's Table 1.
func montiumFFTCycles(n int) int64 {
	return montium.FFTKernelCycles(n) + montium.ReshuffleCycles(int64(n))
}
