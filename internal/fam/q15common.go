package fam

import (
	"fmt"
	"math"
	"math/bits"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/fixed"
	"tiledcfd/internal/montium"
	"tiledcfd/internal/scf"
)

// defaultBackoff is the input conditioning applied before Q15
// quantisation when the estimator's InputScale is zero: half scale,
// leaving 6 dB of headroom — the same default core.Run applies on the
// platform path.
const defaultBackoff = 0.5

// q15Backoff validates and defaults an InputScale field.
func q15Backoff(scale float64) (float64, error) {
	if scale == 0 {
		return defaultBackoff, nil
	}
	if scale < 0 || scale > 1 || math.IsNaN(scale) {
		return 0, fmt.Errorf("fam: InputScale %v outside (0, 1]", scale)
	}
	return scale, nil
}

// q15InputPeak validates an InputPeak field: zero means "measure the
// peak from the batch input"; a positive finite value fixes the
// conditioning reference (required for streaming).
func q15InputPeak(peak float64) (float64, error) {
	if peak < 0 || math.IsNaN(peak) || math.IsInf(peak, 0) {
		return 0, fmt.Errorf("fam: InputPeak %v must be finite and >= 0", peak)
	}
	return peak, nil
}

// quantiseQ15 conditions the first n samples of x so the peak component
// sits at backoff, then rounds to Q15 — the same front door core.Run
// applies on the platform path (InputScale semantics). It returns the
// quantised samples and the gain actually applied, which the caller
// divides back out of the surface so fixed results stay in float-path
// units.
//
// peak > 0 fixes the conditioning reference instead of measuring it
// from the input — the deterministic front door the streaming
// accumulators need (an incremental path cannot know the future peak).
// Samples exceeding peak then saturate at the Q15 rails, exactly as a
// fixed-gain ADC front end would. With peak == 0 the input's own peak
// is measured; a zero input returns gain 0 (the surface is exactly
// zero).
func quantiseQ15(x []complex128, n int, backoff, peak float64) ([]fixed.Complex, float64) {
	if peak == 0 {
		for i := 0; i < n; i++ {
			if v := math.Abs(real(x[i])); v > peak {
				peak = v
			}
			if v := math.Abs(imag(x[i])); v > peak {
				peak = v
			}
		}
	}
	out := make([]fixed.Complex, n)
	if peak == 0 {
		return out, 0
	}
	gain := backoff / peak
	g := complex(gain, 0)
	for i := range out {
		out[i] = fixed.CFromFloat(x[i] * g)
	}
	return out, gain
}

// surfaceGain folds the input conditioning gain and the smoothing-length
// normalisation into the QSurface residual gain: 1/(smooth·gain²), or 0
// for an all-zero input (gain 0).
func surfaceGain(smooth int, gain float64) float64 {
	if gain == 0 {
		return 0
	}
	return 1 / (float64(smooth) * gain * gain)
}

// q15Channelizer is the fixed-point twin of channelize: blocks hops of a
// k-point windowed block-floating-point FFT over xq, hop samples apart,
// each channel downconverted by the Q15 roots table. Storage is
// hop-major: hops[n][v] is channel v of hop n, valued DFT_channel/
// 2^exps[n] (each hop carries its own tracked exponent), so windowing,
// the batched FFT, downconversion and exponent alignment all run over
// contiguous rows; transpose gathers channel-major series for the
// second-stage consumers.
type q15Channelizer struct {
	k     int
	hops  [][]fixed.Complex
	exps  []int
	fftCy int64 // modeled FFT kernel cycles spent
	macCy int64 // modeled complex-MAC cycles spent (window + downconversion)
}

// channelizeQ15 runs the fixed channelizer on the given kernels: all
// hop rows are windowed, pushed through ONE shared plan invocation
// (fft.FixedPlan.ForwardScaledBatchWith) and downconverted in place.
// The caller guarantees len(xq) >= k+(blocks-1)·hop. The per-hop value
// sequence is identical to running q15Hop hop by hop, which is how the
// streaming accumulators reproduce it incrementally.
func channelizeQ15(kern fixed.Kernels, xq []fixed.Complex, k, hop, blocks int, win []fixed.Q15, policy fft.ScalingPolicy) (*q15Channelizer, error) {
	if win != nil && len(win) != k {
		return nil, fmt.Errorf("fam: window length %d != channelizer size %d", len(win), k)
	}
	plan, err := fft.NewFixedPlan(k)
	if err != nil {
		return nil, err
	}
	roots, err := fft.FixedRoots(k)
	if err != nil {
		return nil, err
	}
	c := &q15Channelizer{k: k, hops: make([][]fixed.Complex, blocks)}
	cells := make([]fixed.Complex, k*blocks)
	for n := range c.hops {
		c.hops[n], cells = cells[:k:k], cells[k:]
	}
	for n := 0; n < blocks; n++ {
		block := xq[n*hop : n*hop+k]
		if win != nil {
			kern.ScaleReal(c.hops[n], block, win)
			c.macCy += int64(k)
		} else {
			copy(c.hops[n], block)
		}
	}
	exps, err := plan.ForwardScaledBatchWith(kern, c.hops, policy)
	if err != nil {
		return nil, err
	}
	c.exps = exps
	mask := k - 1
	for n := 0; n < blocks; n++ {
		// Downconvert with the absolute-time reference e^{-j2π·start·v/k},
		// exactly as the float channelizer, but through the Q15 roots.
		kern.MulRoots(c.hops[n], c.hops[n], roots, 0, (n*hop)&mask, mask)
		c.fftCy += montiumFFTCycles(k)
		c.macCy += int64(k)
	}
	return c, nil
}

// q15Hop computes one channelizer hop row into dst (len k): optional
// window, FFT under policy, downconversion for a block starting at
// absolute sample `start`. It is the incremental unit of channelizeQ15
// — same kernels, same order, bit-identical values — used by the
// streaming accumulators.
func q15Hop(kern fixed.Kernels, plan *fft.FixedPlan, roots []fixed.Complex, dst, block []fixed.Complex, win []fixed.Q15, start int, policy fft.ScalingPolicy) (int, error) {
	if win != nil {
		kern.ScaleReal(dst, block, win)
	} else {
		copy(dst, block)
	}
	exp, err := plan.ForwardScaledWith(kern, dst, dst, policy)
	if err != nil {
		return 0, err
	}
	k := len(dst)
	kern.MulRoots(dst, dst, roots, 0, start&(k-1), k-1)
	return exp, nil
}

// alignExponents renormalises every hop to the common exponent
// max(exps): hop n's channel values are right-shifted by emax-exps[n]
// with round-half-up, after which every channel value is DFT/2^emax.
// It returns emax and the number of values shifted (the alignment pass's
// cycle cost). The shift order is fixed (hops ascending, channels
// ascending within the kernel pass), so the pass is bit-deterministic.
func (c *q15Channelizer) alignExponents(kern fixed.Kernels) (emax int, shifted int64) {
	for _, e := range c.exps {
		if e > emax {
			emax = e
		}
	}
	for n, e := range c.exps {
		d := uint(emax - e)
		if d == 0 {
			continue
		}
		kern.ShiftRound(c.hops[n], d)
		shifted += int64(c.k)
	}
	return emax, shifted
}

// transpose gathers the listed channels into channel-major series:
// out[v][n] = hops[n][v]. Only channels in needed are materialised
// (out keeps nil rows elsewhere), so pruned runs pay for exactly the
// channels their rows read. needed must be sorted ascending for cache-
// friendly reads; duplicates are not allowed.
func (c *q15Channelizer) transpose(needed []int) [][]fixed.Complex {
	blocks := len(c.hops)
	out := make([][]fixed.Complex, c.k)
	cells := make([]fixed.Complex, len(needed)*blocks)
	for _, v := range needed {
		out[v], cells = cells[:blocks:blocks], cells[blocks:]
	}
	// Blocked over hops so each pass reuses the same small set of source
	// cache lines across the whole channel list instead of streaming the
	// full hop-major array once per channel (or thrashing writes the
	// other way around).
	const tile = 32
	for n0 := 0; n0 < blocks; n0 += tile {
		n1 := n0 + tile
		if n1 > blocks {
			n1 = blocks
		}
		for _, v := range needed {
			row := out[v]
			for n := n0; n < n1; n++ {
				row[n] = c.hops[n][v]
			}
		}
	}
	return out
}

// transposeWide is transpose with the output rows pre-widened into the
// fixed.WidenRow float64 layout fixed.Kernels.DotConjQ30 consumes:
// out[v][2n], out[v][2n+1] = re, im of channel v at hop n, exact. The
// FAM second stage runs thousands of dots over a few hundred channel
// rows, so widening once here amortises the integer-to-float conversion
// to nothing.
func (c *q15Channelizer) transposeWide(needed []int) [][]float64 {
	blocks := len(c.hops)
	out := make([][]float64, c.k)
	cells := make([]float64, 2*len(needed)*blocks)
	for _, v := range needed {
		out[v], cells = cells[:2*blocks:2*blocks], cells[2*blocks:]
	}
	const tile = 32
	for n0 := 0; n0 < blocks; n0 += tile {
		n1 := n0 + tile
		if n1 > blocks {
			n1 = blocks
		}
		for _, v := range needed {
			row := out[v]
			for n := n0; n < n1; n++ {
				h := c.hops[n][v]
				row[2*n] = float64(h.Re)
				row[2*n+1] = float64(h.Im)
			}
		}
	}
	return out
}

// neededChannels returns the sorted set of channelizer bins the given
// grid rows read: residues (f+a) mod k for every row a and f in
// [-m, m], plus the (f-a) residues when mirror is set (the FAM dot
// products read both factors; SSCA strips only read f+a).
func neededChannels(k, m int, rows []int, mirror bool) []int {
	seen := make([]bool, k)
	mask := k - 1
	for _, a := range rows {
		for f := -m; f <= m; f++ {
			seen[(f+a)&mask] = true
			if mirror {
				seen[(f-a)&mask] = true
			}
		}
	}
	needed := make([]int, 0, k)
	for v, ok := range seen {
		if ok {
			needed = append(needed, v)
		}
	}
	return needed
}

// accGrid is a full-precision int64 accumulator grid (Q30 units), the
// wide intermediate both fixed backends reduce to a QSurface with one
// surface-level block-floating-point rounding. Under alpha pruning the
// grid holds only the candidate rows (alphas non-nil, data[i] the row
// for a = alphas[i]); the reduction then derives the surface exponent
// from the computed cells alone, so a pruned QSurface is bit-exact
// deterministic and converts exactly, but its raw words need not match
// a full-plane run whose peak lives on an uncomputed row.
type accGrid struct {
	m      int
	alphas []int          // nil = dense rows a in [-(m-1), m-1]
	data   [][]fixed.CAcc // data[rowIndex][f+m-1]
}

func newAccGrid(m int) *accGrid {
	n := 2*m - 1
	data := make([][]fixed.CAcc, n)
	cells := make([]fixed.CAcc, n*n)
	for i := range data {
		data[i], cells = cells[:n], cells[n:]
	}
	return &accGrid{m: m, data: data}
}

// newAccGridFor sizes the grid for p: dense, or pruned to p's candidate
// row set.
func newAccGridFor(p scf.Params) *accGrid {
	alphas := p.SurfaceAlphas()
	if alphas == nil {
		return newAccGrid(p.M)
	}
	n := 2*p.M - 1
	data := make([][]fixed.CAcc, len(alphas))
	cells := make([]fixed.CAcc, len(alphas)*n)
	for i := range data {
		data[i], cells = cells[:n], cells[n:]
	}
	return &accGrid{m: p.M, alphas: alphas, data: data}
}

// rowAlphas returns the offsets a of the grid's rows, in row order.
func (g *accGrid) rowAlphas() []int {
	if g.alphas != nil {
		return g.alphas
	}
	out := make([]int, 2*g.m-1)
	for i := range out {
		out[i] = i - (g.m - 1)
	}
	return out
}

// rowIndex returns the grid row holding offset a, or -1 when the grid
// does not hold it.
func (g *accGrid) rowIndex(a int) int {
	if g.alphas == nil {
		i := a + g.m - 1
		if i < 0 || i >= len(g.data) {
			return -1
		}
		return i
	}
	lo, hi := 0, len(g.alphas)
	for lo < hi {
		mid := (lo + hi) / 2
		if g.alphas[mid] < a {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(g.alphas) && g.alphas[lo] == a {
		return lo
	}
	return -1
}

// mirrorHermitian fills every negative-offset row from its positive
// counterpart at full accumulator precision: the DSCF term for (f, -a)
// is X_{f-a}·conj(X_{f+a}), the termwise conjugate of the (f, a) term,
// so the int64 accumulator for row -a is exactly (Re, -Im) of row +a —
// integer sums make the identity exact, not approximate. Mirroring
// before the single-rounding reduce is therefore bit-identical to
// accumulating the negative rows directly, at half the dot-product
// work. (SSCA must not use this: its strips are FFTs of distinct
// product sequences, not termwise conjugates.)
func (g *accGrid) mirrorHermitian() {
	for i, a := range g.rowAlphas() {
		if a >= 0 {
			continue
		}
		j := g.rowIndex(-a)
		if j < 0 {
			continue
		}
		src, dst := g.data[j], g.data[i]
		for fi := range dst {
			dst[fi] = fixed.CAcc{Re: src[fi].Re, Im: -src[fi].Im}
		}
	}
}

// reduce converts the grid to a QSurface: the peak component picks the
// smallest right-shift landing it in the top half of the Q15 range
// (left-shifting weak surfaces up instead), every cell is rounded once at
// that scale, and the net exponent is folded into QSurface.Exp so that
//
//	float cell = q15 cell · 2^Exp · gain
//
// where the accumulators hold float·2^(30-accExp)/gain (accExp the
// exponent the caller's products carry, e.g. 2·emax for FAM). The single
// rounding point keeps the reduction bit-exact regardless of how the
// accumulators were filled in parallel.
func (g *accGrid) reduce(accExp int, gain float64) *scf.QSurface {
	var amax int64
	for _, row := range g.data {
		for _, a := range row {
			if v := a.Re; v > amax {
				amax = v
			} else if -v > amax {
				amax = -v
			}
			if v := a.Im; v > amax {
				amax = v
			} else if -v > amax {
				amax = -v
			}
		}
	}
	var out *scf.QSurface
	if g.alphas != nil {
		out = scf.NewSparseQSurface(g.m, g.alphas)
	} else {
		out = scf.NewQSurface(g.m)
	}
	out.Gain = gain
	if amax == 0 {
		out.Exp = accExp - 30
		return out
	}
	// sh (may be negative) brings amax into [2^14, 2^15): bitlen-15.
	sh := bits.Len64(uint64(amax)) - 15
	for ai, row := range g.data {
		for fi, a := range row {
			out.Data[ai][fi] = fixed.Complex{
				Re: shiftToQ15(a.Re, sh),
				Im: shiftToQ15(a.Im, sh),
			}
		}
	}
	// Cell integer c represents acc/2^sh; acc = float·2^(30-accExp)/gain,
	// and the Q15 value is c/2^15, so float = q15 · 2^(sh+15-30+accExp) · gain.
	out.Exp = sh + accExp - 15
	return out
}

// shiftToQ15 rounds v/2^sh into Q15 with round-half-up and saturation;
// negative sh left-shifts exactly.
func shiftToQ15(v int64, sh int) fixed.Q15 {
	if sh <= 0 {
		return fixed.SaturateInt(v << uint(-sh))
	}
	return fixed.SaturateInt((v + 1<<(uint(sh)-1)) >> uint(sh))
}

// montiumFFTCycles charges one FFT kernel run plus the reshuffling pass
// that feeds it, the two per-transform rows of the paper's Table 1.
func montiumFFTCycles(n int) int64 {
	return montium.FFTKernelCycles(n) + montium.ReshuffleCycles(int64(n))
}
