package fam_test

import (
	"testing"

	"tiledcfd"
	"tiledcfd/internal/fam"
	"tiledcfd/internal/scf"
)

// benchEstimators builds the three estimators at the paper's geometry
// (K=256, M=64) for a band of blocks·K samples.
func benchEstimators(blocks int) []scf.Estimator {
	p := scf.Params{K: 256, M: 64}
	direct := p
	direct.Blocks = blocks
	return []scf.Estimator{
		scf.Direct{Params: direct},
		fam.FAM{Params: p},
		fam.SSCA{Params: p},
	}
}

// BenchmarkEstimators compares the three spectral-correlation estimators
// on the same BPSK band at the paper's geometry: wall-clock per estimate
// plus the complex-multiplication counts each spends in FFTs and in
// pointwise products (the complexity comparison of the paper's section 2,
// extended to the time-smoothing estimators).
func BenchmarkEstimators(b *testing.B) {
	const blocks = 8
	band, err := tiledcfd.NewBPSKBand(256*blocks, 0.125, 8, 10, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range benchEstimators(blocks) {
		b.Run(e.Name(), func(b *testing.B) {
			var stats *scf.Stats
			for i := 0; i < b.N; i++ {
				_, st, err := e.Estimate(band)
				if err != nil {
					b.Fatal(err)
				}
				stats = st
			}
			b.ReportMetric(float64(stats.FFTMults), "fft_mults")
			b.ReportMetric(float64(stats.DSCFMults), "pointwise_mults")
			b.ReportMetric(float64(stats.TotalMults()), "total_mults")
			b.ReportMetric(float64(stats.Blocks), "smoothing_len")
		})
	}
}
