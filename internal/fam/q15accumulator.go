package fam

import (
	"fmt"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/fixed"
	"tiledcfd/internal/scf"
)

// This file implements scf.Accumulator for FAMQ15 and SSCAQ15: the
// incremental twins of the fixed-point batch estimators, bit-identical
// to EstimateQ15 on the concatenated stream for every chunking.
//
// The fixed-point front door is the obstacle the float accumulators do
// not have: batch quantisation conditions the input against its own
// measured peak, which an incremental path cannot know. Both Q15
// accumulators therefore require InputPeak — the fixed full-scale
// reference a real ADC front end presents — so quantisation becomes a
// pure per-sample map and the streamed words match the batch words
// exactly. NewAccumulator rejects estimators without it.
//
// The second obstacle is block floating point: every hop carries its
// own exponent, and the common scale emax is a function of ALL hops in
// a snapshot, so per-cell running sums cannot be maintained (a new hop
// with a larger exponent would retroactively re-scale every earlier
// product). Both accumulators instead bank the per-hop channelizer rows
// — computed incrementally, hop by hop, through the exact kernel
// sequence of channelizeQ15 — and defer alignment and the second stage
// to Snapshot, where they run the same shared finish code as the batch
// path (famQ15Finish / sscaQ15Finish). Banked rows cost 4·K bytes per
// hop: bounded by N for SSCAQ15 with N set, stream-proportional
// otherwise (long-running monitors should set N or Reset between
// windows, as with the float SSCA).

// q15Front is the shared streaming front end: the fixed-gain quantiser
// and the banked per-hop channelizer state.
type q15Front struct {
	p      scf.Params
	kern   fixed.Kernels
	plan   *fft.FixedPlan
	roots  []fixed.Complex
	win    []fixed.Q15
	policy fft.ScalingPolicy
	gain   float64

	rows [][]fixed.Complex // banked downconverted hops, hop-major
	exps []int             // per-hop BFP exponents

	xq    []fixed.Complex // quantised pending tail; xq[0] is sample base
	base  int
	total int
}

// newQ15Front validates the shared streaming configuration. The kernel
// implementation is captured once here (fixed.Active() at construction),
// so a process-wide fixed.Use switch mid-stream cannot mix kernels
// within one accumulator's lifetime.
func newQ15Front(p scf.Params, scale, peak float64, policy fft.ScalingPolicy, name string) (*q15Front, error) {
	backoff, err := q15Backoff(scale)
	if err != nil {
		return nil, err
	}
	if peak, err = q15InputPeak(peak); err != nil {
		return nil, err
	}
	if peak == 0 {
		return nil, fmt.Errorf("fam: %s streaming requires InputPeak: the batch path conditions against the measured input peak, which an incremental path cannot know", name)
	}
	win, err := fft.FixedWindow(p.Window, p.K)
	if err != nil {
		return nil, err
	}
	plan, err := fft.NewFixedPlan(p.K)
	if err != nil {
		return nil, err
	}
	roots, err := fft.FixedRoots(p.K)
	if err != nil {
		return nil, err
	}
	return &q15Front{
		p:      p,
		kern:   fixed.Active(),
		plan:   plan,
		roots:  roots,
		win:    win,
		policy: policy,
		gain:   backoff / peak,
	}, nil
}

// push quantises the chunk with the fixed conditioning gain — the exact
// expression quantiseQ15 applies, so the streamed Q15 words match the
// batch words — and completes every hop the buffered tail now covers
// (hop h spans samples [h·hop, h·hop+K)).
func (q *q15Front) push(samples []complex128, hop int) error {
	g := complex(q.gain, 0)
	for _, s := range samples {
		q.xq = append(q.xq, fixed.CFromFloat(s*g))
	}
	q.total += len(samples)
	k := q.p.K
	for {
		start := len(q.rows) * hop
		if q.base+len(q.xq) < start+k {
			return nil
		}
		row := make([]fixed.Complex, k)
		exp, err := q15Hop(q.kern, q.plan, q.roots, row, q.xq[start-q.base:start-q.base+k], q.win, start, q.policy)
		if err != nil {
			return err
		}
		q.rows = append(q.rows, row)
		q.exps = append(q.exps, exp)
	}
}

// trim drops quantised samples before absolute index keepFrom.
func (q *q15Front) trim(keepFrom int) {
	cut := keepFrom - q.base
	if cut <= 0 {
		return
	}
	if cut > len(q.xq) {
		cut = len(q.xq)
	}
	n := copy(q.xq, q.xq[cut:])
	q.xq = q.xq[:n]
	q.base += cut
}

// channelizer rebuilds a q15Channelizer over the first blocks banked
// hops, with copied rows (Snapshot must not consume the banked state —
// alignment shifts in place) and the cycle counters channelizeQ15 would
// have charged for the same geometry.
func (q *q15Front) channelizer(blocks int) *q15Channelizer {
	k := q.p.K
	c := &q15Channelizer{
		k:     k,
		hops:  make([][]fixed.Complex, blocks),
		exps:  append([]int(nil), q.exps[:blocks]...),
		fftCy: int64(blocks) * montiumFFTCycles(k),
		macCy: int64(blocks) * int64(k),
	}
	if q.win != nil {
		c.macCy *= 2
	}
	cells := make([]fixed.Complex, k*blocks)
	for n := range c.hops {
		c.hops[n], cells = cells[:k:k], cells[k:]
		copy(c.hops[n], q.rows[n])
	}
	return c
}

// reset returns the front end to its freshly constructed state.
func (q *q15Front) reset() {
	q.rows = q.rows[:0]
	q.exps = q.exps[:0]
	q.xq = q.xq[:0]
	q.base = 0
	q.total = 0
}

// NewAccumulator implements scf.StreamingEstimator. It requires
// InputPeak > 0 (see the file comment: batch quantisation conditions
// against the measured peak, which a stream cannot know; set the same
// InputPeak on the batch estimator to compare the two bit for bit).
// Workers is ignored — snapshots run serially on the caller's
// goroutine. Memory grows by 4·K bytes per channelizer hop plus the
// K-sample window overlap.
func (e FAMQ15) NewAccumulator() (scf.Accumulator, error) {
	p := famDefaults(e.Params, 0)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	front, err := newQ15Front(p, e.InputScale, e.InputPeak, e.Policy, "FAM-Q15")
	if err != nil {
		return nil, err
	}
	return &famQ15Accumulator{front: front}, nil
}

var _ scf.StreamingEstimator = FAMQ15{}

// famQ15Accumulator is the incremental FAMQ15: banked channelizer hops
// (see the file comment) with the batch second stage replayed by
// Snapshot over the largest power-of-two hop prefix.
type famQ15Accumulator struct {
	front *q15Front
}

// Name implements scf.Accumulator.
func (f *famQ15Accumulator) Name() string { return "fam-q15" }

// Samples implements scf.Accumulator.
func (f *famQ15Accumulator) Samples() int { return f.front.total }

// Ready implements scf.Accumulator: the batch path needs two hops.
func (f *famQ15Accumulator) Ready() bool { return len(f.front.rows) >= 2 }

// Push implements scf.Accumulator.
func (f *famQ15Accumulator) Push(samples []complex128) error {
	if err := f.front.push(samples, f.front.p.Hop); err != nil {
		return err
	}
	// Hops overlap when Hop < K, but a completed hop's samples before
	// the next hop's start are never read again.
	f.front.trim(len(f.front.rows) * f.front.p.Hop)
	return nil
}

// SnapshotQ15 computes the surface in its native Q15-plus-exponent
// form: the shared famQ15Finish over the first pow2floor(hops) banked
// hops — exactly the prefix batch EstimateQ15 smooths — leaving the
// banked state untouched, so snapshots repeat and the stream continues.
func (f *famQ15Accumulator) SnapshotQ15() (*scf.QSurface, *scf.Stats, error) {
	q := f.front
	np := pow2Floor(len(q.rows))
	if np < 2 {
		return nil, nil, needSamples("FAM-Q15", q.p.K+q.p.Hop, q.total)
	}
	need := q.p.K + (np-1)*q.p.Hop
	return famQ15Finish(q.p, q.kern, q.channelizer(np), q.gain, 1, need)
}

// Snapshot implements scf.Accumulator: SnapshotQ15 converted exactly
// into float-FAM units.
func (f *famQ15Accumulator) Snapshot() (*scf.Surface, *scf.Stats, error) {
	s, stats, err := f.SnapshotQ15()
	if err != nil {
		return nil, nil, err
	}
	return s.Float(), stats, nil
}

// Reset implements scf.Accumulator.
func (f *famQ15Accumulator) Reset() { f.front.reset() }

// NewAccumulator implements scf.StreamingEstimator, with the same
// InputPeak requirement as FAMQ15.NewAccumulator. With N set the banked
// state is bounded (N hops of 4·K bytes plus the sample prefix the
// conjugate factor reads); with N zero it grows with the stream and
// each snapshot spans the largest power-of-two hop prefix.
func (e SSCAQ15) NewAccumulator() (scf.Accumulator, error) {
	p := famDefaults(e.Params, 1)
	p.Hop = 1
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if e.N != 0 {
		if e.N < p.K {
			return nil, needSamples("SSCA-Q15", 2*p.K-1, e.N)
		}
		if !fft.IsPow2(e.N) {
			return nil, fmt.Errorf("fam: SSCA-Q15 strip length N=%d must be a power of two", e.N)
		}
	}
	front, err := newQ15Front(p, e.InputScale, e.InputPeak, e.Policy, "SSCA-Q15")
	if err != nil {
		return nil, err
	}
	return &sscaQ15Accumulator{front: front, nFixed: e.N}, nil
}

var _ scf.StreamingEstimator = SSCAQ15{}

// sscaQ15Accumulator is the incremental SSCAQ15: banked unit-hop
// channelizer rows with the batch strip stage replayed by Snapshot.
// Unlike the float SSCA accumulator it cannot pre-multiply the
// conjugate factor into running strips (the products would need the
// not-yet-known common exponent), so it banks the raw rows and keeps
// the quantised sample prefix the conjugate factor reads.
type sscaQ15Accumulator struct {
	front  *q15Front
	nFixed int
}

// Name implements scf.Accumulator.
func (s *sscaQ15Accumulator) Name() string { return "ssca-q15" }

// Samples implements scf.Accumulator.
func (s *sscaQ15Accumulator) Samples() int { return s.front.total }

// stripLen returns the strip length a snapshot would use now, or 0 when
// too few hops have arrived.
func (s *sscaQ15Accumulator) stripLen() int {
	hops := len(s.front.rows)
	if s.nFixed != 0 {
		if hops >= s.nFixed {
			return s.nFixed
		}
		return 0
	}
	if n := pow2Floor(hops); n >= s.front.p.K {
		return n
	}
	return 0
}

// Ready implements scf.Accumulator.
func (s *sscaQ15Accumulator) Ready() bool { return s.stripLen() != 0 }

// Push implements scf.Accumulator. The quantised prefix is retained in
// full (the conjugate factor reads it back to sample centre and the
// strip length can still grow), except in fixed-N mode once the N hops
// and their conjugate span are complete, after which arriving samples
// only advance the counter.
func (s *sscaQ15Accumulator) Push(samples []complex128) error {
	q := s.front
	if s.nFixed != 0 && len(q.rows) >= s.nFixed {
		q.total += len(samples)
		return nil
	}
	return q.push(samples, 1)
}

// SnapshotQ15 computes the surface in its native Q15-plus-exponent
// form via the shared sscaQ15Finish, leaving the banked state intact.
func (s *sscaQ15Accumulator) SnapshotQ15() (*scf.QSurface, *scf.Stats, error) {
	q := s.front
	n := s.stripLen()
	if n == 0 {
		need := 2*q.p.K - 1
		if s.nFixed != 0 {
			need = s.nFixed + q.p.K - 1
		}
		return nil, nil, needSamples("SSCA-Q15", need, q.total)
	}
	need := n + q.p.K - 1
	return sscaQ15Finish(q.p, q.kern, q.channelizer(n), q.xq, q.gain, 1, need, q.policy)
}

// Snapshot implements scf.Accumulator: SnapshotQ15 converted exactly
// into float-SSCA units.
func (s *sscaQ15Accumulator) Snapshot() (*scf.Surface, *scf.Stats, error) {
	sf, stats, err := s.SnapshotQ15()
	if err != nil {
		return nil, nil, err
	}
	return sf.Float(), stats, nil
}

// Reset implements scf.Accumulator.
func (s *sscaQ15Accumulator) Reset() { s.front.reset() }
