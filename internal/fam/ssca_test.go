package fam

import (
	"math/cmplx"
	"testing"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/scf"
)

func TestSSCAToneConcentratesOnPSDRow(t *testing.T) {
	const k, m = 64, 16
	e := SSCA{Params: scf.Params{K: k, M: m}}
	s, stats, err := e.Estimate(tone(k*16, 8.0/k))
	if err != nil {
		t.Fatal(err)
	}
	fPeak, aPeak, _ := s.MaxFeature(false)
	if aPeak != 0 || fPeak != 8 {
		t.Fatalf("tone peak at (f=%d, a=%d), want (8, 0)", fPeak, aPeak)
	}
	psd := cmplx.Abs(s.At(8, 0))
	_, _, off := s.MaxFeature(true)
	if off > psd*0.05 {
		t.Fatalf("off-row leakage %g vs PSD peak %g", off, psd)
	}
	// 16·K samples minus the channelizer tail leaves a 512-point strip.
	if stats.Blocks != 512 {
		t.Fatalf("strip length %d, want 512", stats.Blocks)
	}
}

func TestSSCADoubledCarrierFeature(t *testing.T) {
	const k, m = 64, 16
	const bin = 8
	x := realTone(k*16, float64(bin)/k)
	for _, w := range []fft.WindowKind{fft.Rectangular, fft.Hamming} {
		e := SSCA{Params: scf.Params{K: k, M: m, Window: w}}
		s, _, err := e.Estimate(x)
		if err != nil {
			t.Fatal(err)
		}
		f, a, _ := s.MaxFeature(true)
		if abs(a) != bin || f != 0 {
			t.Fatalf("window %v: doubled-carrier feature at (f=%d, a=%d), want (0, ±%d)", w, f, a, bin)
		}
	}
}

func TestSSCAExplicitStripLength(t *testing.T) {
	const k, m = 64, 16
	x := tone(k*16, 8.0/k)
	e := SSCA{Params: scf.Params{K: k, M: m}, N: 256}
	s, stats, err := e.Estimate(x)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Blocks != 256 {
		t.Fatalf("strip length %d, want explicit 256", stats.Blocks)
	}
	if f, a, _ := s.MaxFeature(false); a != 0 || f != 8 {
		t.Fatalf("peak (f=%d, a=%d), want (8, 0)", f, a)
	}
}

func TestSSCAErrors(t *testing.T) {
	e := SSCA{Params: scf.Params{K: 64, M: 16}}
	if _, _, err := e.Estimate(make([]complex128, 100)); err == nil {
		t.Error("input shorter than K+K-1 should fail")
	}
	if got, want := e.MinSamples(), 64+63; got != want {
		t.Errorf("MinSamples = %d, want %d", got, want)
	}
	if _, _, err := (SSCA{Params: scf.Params{K: 64, M: 16}, N: 192}).Estimate(make([]complex128, 1024)); err == nil {
		t.Error("non-power-of-two N should fail")
	}
	if _, _, err := (SSCA{Params: scf.Params{K: 64, M: 16}, N: 1024}).Estimate(make([]complex128, 512)); err == nil {
		t.Error("N longer than the input should fail")
	}
}
