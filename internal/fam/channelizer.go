package fam

import (
	"fmt"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/scf"
)

// channelize computes the shared FAM/SSCA front end: blocks hops of a
// k-point windowed FFT over x, hop samples apart, each channel
// downconverted to baseband with the absolute-time phase reference
// e^{-j2π·v·start/k}. The result is per-channel time series:
// out[v][n] is channel v of the hop starting at sample n·hop.
//
// win is the analysis window (nil for rectangular). The caller must
// guarantee len(x) >= k+(blocks-1)·hop.
//
// The per-hop loop allocates nothing: the plan and the downconversion
// table come from the process-wide fft cache and the FFT/window scratch
// buffers are pooled. Only the output backing array is allocated per call.
func channelize(x []complex128, k, hop, blocks int, win []float64) ([][]complex128, error) {
	if win != nil && len(win) != k {
		return nil, fmt.Errorf("fam: window length %d != channelizer size %d", len(win), k)
	}
	plan, err := fft.PlanFor(k)
	if err != nil {
		return nil, err
	}
	roots, err := fft.Roots(k)
	if err != nil {
		return nil, err
	}
	out := make([][]complex128, k)
	cells := make([]complex128, k*blocks)
	for v := range out {
		out[v], cells = cells[:blocks], cells[blocks:]
	}
	specBuf := fft.GetScratch(k)
	defer fft.PutScratch(specBuf)
	spec := *specBuf
	var winbuf []complex128
	if win != nil {
		winbufBuf := fft.GetScratch(k)
		defer fft.PutScratch(winbufBuf)
		winbuf = *winbufBuf
	}
	for n := 0; n < blocks; n++ {
		start := n * hop
		block := x[start : start+k]
		if win != nil {
			if err := fft.ApplyWindowInto(winbuf, block, win); err != nil {
				return nil, err
			}
			block = winbuf
		}
		if err := plan.Forward(spec, block); err != nil {
			return nil, err
		}
		// Downconvert with the absolute-time reference: the exponent
		// (start·v) mod k advances by start per channel, reduced with a
		// masked add (k is a power of two) — exact for large start·v.
		step := start & (k - 1)
		idx := 0
		for v := 0; v < k; v++ {
			out[v][n] = spec[v] * roots[idx]
			idx = (idx + step) & (k - 1)
		}
	}
	return out, nil
}

// famDefaults fills the zero fields of a FAM/SSCA parameter set: K=256,
// M=K/4, and the given default hop. Blocks is forced to 1 — both
// estimators derive their own smoothing length from the input.
func famDefaults(p scf.Params, defaultHop int) scf.Params {
	if p.K == 0 {
		p.K = 256
	}
	if p.M == 0 {
		p.M = p.K / 4
	}
	if p.Hop == 0 {
		p.Hop = defaultHop
		if p.Hop == 0 {
			p.Hop = p.K / 4
		}
	}
	p.Blocks = 1
	return p
}

// pow2Floor returns the largest power of two not exceeding n, or 0 when
// n < 1 (fft.Pow2Floor, aliased for the package's call sites).
func pow2Floor(n int) int { return fft.Pow2Floor(n) }

// needSamples formats the standard too-short error.
func needSamples(name string, need, have int) error {
	return fmt.Errorf("fam: %s needs >= %d samples, have %d", name, need, have)
}
