package fam

import (
	"testing"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/scf"
)

// q15SnapshotQ15 extracts the native-Q15 snapshot from an accumulator
// produced by FAMQ15/SSCAQ15.NewAccumulator.
func q15SnapshotQ15(t *testing.T, acc scf.Accumulator) *scf.QSurface {
	t.Helper()
	type snapshotterQ15 interface {
		SnapshotQ15() (*scf.QSurface, *scf.Stats, error)
	}
	s, _, err := acc.(snapshotterQ15).SnapshotQ15()
	if err != nil {
		t.Fatalf("SnapshotQ15: %v", err)
	}
	return s
}

// TestQ15AccumulatorMatchesBatch is the streaming acceptance criterion:
// with a shared InputPeak, pushing a stream through the Q15 accumulators
// in ANY chunking and taking a snapshot yields bit-for-bit the batch
// EstimateQ15 surface of the concatenated prefix — words, exponent and
// gain — across windows, alpha pruning, scaling policies and batch
// Workers settings.
func TestQ15AccumulatorMatchesBatch(t *testing.T) {
	band := q15TestBand(t, 1600, 21)
	const peak = 1.5
	cases := []struct {
		name string
		fam  FAMQ15
		ssca SSCAQ15
	}{
		{
			name: "default",
			fam:  FAMQ15{Params: scf.Params{K: 64, M: 16}, InputPeak: peak},
			ssca: SSCAQ15{Params: scf.Params{K: 64, M: 16}, InputPeak: peak},
		},
		{
			name: "hann-uniform",
			fam: FAMQ15{Params: scf.Params{K: 64, M: 16, Window: fft.Hann},
				InputPeak: peak, Policy: fft.ScaleUniform},
			ssca: SSCAQ15{Params: scf.Params{K: 64, M: 16, Window: fft.Hann},
				InputPeak: peak, Policy: fft.ScaleUniform},
		},
		{
			name: "pruned",
			fam: FAMQ15{Params: scf.Params{K: 64, M: 16, AlphaCandidates: []int{0, 3, 8, 11}},
				InputPeak: peak},
			ssca: SSCAQ15{Params: scf.Params{K: 64, M: 16, AlphaCandidates: []int{0, 3, 8, 11}},
				InputPeak: peak},
		},
		{
			name: "ssca-fixed-n",
			fam:  FAMQ15{Params: scf.Params{K: 64, M: 16}, InputPeak: peak},
			ssca: SSCAQ15{Params: scf.Params{K: 64, M: 16}, N: 256, InputPeak: peak},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			famRef, _, err := tc.fam.EstimateQ15(band)
			if err != nil {
				t.Fatal(err)
			}
			sscaRef, _, err := tc.ssca.EstimateQ15(band)
			if err != nil {
				t.Fatal(err)
			}
			// The accumulator snapshot runs serially; the batch surface
			// must not depend on Workers for the comparison to be fair
			// game at any setting.
			for _, w := range []int{1, 4, 8} {
				fw, sw := tc.fam, tc.ssca
				fw.Workers, sw.Workers = w, w
				qf, _, err := fw.EstimateQ15(band)
				if err != nil {
					t.Fatal(err)
				}
				if ok, diff := famRef.Equal(qf); !ok {
					t.Fatalf("FAM-Q15 batch Workers=%d differs: %s", w, diff)
				}
				qs, _, err := sw.EstimateQ15(band)
				if err != nil {
					t.Fatal(err)
				}
				if ok, diff := sscaRef.Equal(qs); !ok {
					t.Fatalf("SSCA-Q15 batch Workers=%d differs: %s", w, diff)
				}
			}
			for _, chunk := range [][]int{{len(band)}, {1}, {7, 19}, {64}, {333}} {
				facc, err := tc.fam.NewAccumulator()
				if err != nil {
					t.Fatal(err)
				}
				pushChunks(t, facc, band, chunk)
				if ok, diff := famRef.Equal(q15SnapshotQ15(t, facc)); !ok {
					t.Errorf("FAM-Q15 chunks=%v snapshot differs from batch: %s", chunk, diff)
				}
				sacc, err := tc.ssca.NewAccumulator()
				if err != nil {
					t.Fatal(err)
				}
				pushChunks(t, sacc, band, chunk)
				if ok, diff := sscaRef.Equal(q15SnapshotQ15(t, sacc)); !ok {
					t.Errorf("SSCA-Q15 chunks=%v snapshot differs from batch: %s", chunk, diff)
				}
			}
		})
	}
}

// TestQ15AccumulatorMidStream snapshots at several stream positions and
// checks each against the batch estimator on exactly the samples pushed
// so far — the non-consuming-snapshot contract plus prefix equivalence.
func TestQ15AccumulatorMidStream(t *testing.T) {
	band := q15TestBand(t, 2000, 22)
	const peak = 1.5
	fam := FAMQ15{Params: scf.Params{K: 64, M: 16}, InputPeak: peak}
	ssca := SSCAQ15{Params: scf.Params{K: 64, M: 16}, InputPeak: peak}
	facc, err := fam.NewAccumulator()
	if err != nil {
		t.Fatal(err)
	}
	sacc, err := ssca.NewAccumulator()
	if err != nil {
		t.Fatal(err)
	}
	marks := []int{200, 500, 1234, 2000}
	prev := 0
	for _, mark := range marks {
		if err := facc.Push(band[prev:mark]); err != nil {
			t.Fatal(err)
		}
		if err := sacc.Push(band[prev:mark]); err != nil {
			t.Fatal(err)
		}
		prev = mark
		if facc.Samples() != mark || sacc.Samples() != mark {
			t.Fatalf("Samples() = %d, %d after %d pushed", facc.Samples(), sacc.Samples(), mark)
		}
		ref, _, err := fam.EstimateQ15(band[:mark])
		if err != nil {
			t.Fatal(err)
		}
		got := q15SnapshotQ15(t, facc)
		if ok, diff := ref.Equal(got); !ok {
			t.Errorf("FAM-Q15 snapshot at %d differs from batch prefix: %s", mark, diff)
		}
		// Snapshot again: must repeat bit-for-bit (non-consuming).
		if ok, diff := got.Equal(q15SnapshotQ15(t, facc)); !ok {
			t.Errorf("FAM-Q15 repeated snapshot at %d differs: %s", mark, diff)
		}
		sref, _, err := ssca.EstimateQ15(band[:mark])
		if err != nil {
			t.Fatal(err)
		}
		sgot := q15SnapshotQ15(t, sacc)
		if ok, diff := sref.Equal(sgot); !ok {
			t.Errorf("SSCA-Q15 snapshot at %d differs from batch prefix: %s", mark, diff)
		}
		if ok, diff := sgot.Equal(q15SnapshotQ15(t, sacc)); !ok {
			t.Errorf("SSCA-Q15 repeated snapshot at %d differs: %s", mark, diff)
		}
	}
}

// TestQ15AccumulatorResetAndReuse checks Reset returns the accumulator
// to its initial state: re-pushing the same stream reproduces the same
// bits, and a too-short stream errors the same way as a fresh one.
func TestQ15AccumulatorResetAndReuse(t *testing.T) {
	band := q15TestBand(t, 800, 23)
	for _, e := range []scf.StreamingEstimator{
		FAMQ15{Params: scf.Params{K: 64, M: 16}, InputPeak: 1.5},
		SSCAQ15{Params: scf.Params{K: 64, M: 16}, InputPeak: 1.5},
	} {
		acc, err := e.NewAccumulator()
		if err != nil {
			t.Fatal(err)
		}
		pushChunks(t, acc, band, []int{100})
		first := q15SnapshotQ15(t, acc)
		acc.Reset()
		if acc.Samples() != 0 || acc.Ready() {
			t.Fatalf("%s: Samples=%d Ready=%v after Reset", acc.Name(), acc.Samples(), acc.Ready())
		}
		if _, _, err := acc.Snapshot(); err == nil {
			t.Fatalf("%s: Snapshot after Reset should error", acc.Name())
		}
		pushChunks(t, acc, band, []int{17})
		if ok, diff := first.Equal(q15SnapshotQ15(t, acc)); !ok {
			t.Errorf("%s: post-Reset replay differs: %s", acc.Name(), diff)
		}
	}
}

// TestQ15AccumulatorRequiresInputPeak pins the streaming front-door
// contract: without a fixed conditioning reference the quantiser cannot
// be chunk-independent, so NewAccumulator must refuse.
func TestQ15AccumulatorRequiresInputPeak(t *testing.T) {
	if _, err := (FAMQ15{Params: scf.Params{K: 64, M: 16}}).NewAccumulator(); err == nil {
		t.Error("FAM-Q15 NewAccumulator without InputPeak should error")
	}
	if _, err := (SSCAQ15{Params: scf.Params{K: 64, M: 16}}).NewAccumulator(); err == nil {
		t.Error("SSCA-Q15 NewAccumulator without InputPeak should error")
	}
	if _, err := (FAMQ15{Params: scf.Params{K: 64, M: 16}, InputPeak: -1}).NewAccumulator(); err == nil {
		t.Error("FAM-Q15 NewAccumulator with negative InputPeak should error")
	}
	if _, err := (SSCAQ15{Params: scf.Params{K: 64, M: 16}, N: 96, InputPeak: 1}).NewAccumulator(); err == nil {
		t.Error("SSCA-Q15 NewAccumulator with non-power-of-two N should error")
	}
	if _, err := (SSCAQ15{Params: scf.Params{K: 64, M: 16}, N: 32, InputPeak: 1}).NewAccumulator(); err == nil {
		t.Error("SSCA-Q15 NewAccumulator with N < K should error")
	}
}

// TestSSCAQ15AccumulatorBoundedMemory checks the fixed-N contract: once
// the N hops and their conjugate span are banked, further pushes only
// advance the sample counter, and the snapshot stays pinned to the
// first N+K-1 samples — matching batch on that prefix, not on the whole
// stream.
func TestSSCAQ15AccumulatorBoundedMemory(t *testing.T) {
	band := q15TestBand(t, 1500, 24)
	e := SSCAQ15{Params: scf.Params{K: 64, M: 16}, N: 128, InputPeak: 1.5}
	acc, err := e.NewAccumulator()
	if err != nil {
		t.Fatal(err)
	}
	pushChunks(t, acc, band, []int{97})
	if acc.Samples() != len(band) {
		t.Fatalf("Samples() = %d, want %d", acc.Samples(), len(band))
	}
	need := e.N + 64 - 1
	ref, _, err := e.EstimateQ15(band[:need])
	if err != nil {
		t.Fatal(err)
	}
	if ok, diff := ref.Equal(q15SnapshotQ15(t, acc)); !ok {
		t.Errorf("fixed-N snapshot differs from batch on first %d samples: %s", need, diff)
	}
	inner := acc.(*sscaQ15Accumulator)
	if hops := len(inner.front.rows); hops > e.N+97 {
		t.Errorf("fixed-N banked %d hops; want bounded near N=%d", hops, e.N)
	}
}
