package fam

import (
	"math/cmplx"
	"runtime"
	"sync"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/scf"
)

// FAM is the FFT Accumulation Method estimator: a K-point channelizer
// hopping by Hop samples (default K/4) with an analysis window, complex
// downconversion of every channel, and a P-point second FFT across the
// channelizer hops for every surface cell's channel-pair product
// sequence. Bin 0 of the second FFT — the cyclic component at exactly
// the cell's cycle frequency α = 2a/K — fills the cell.
//
// P, the smoothing length, is the largest power of two not exceeding the
// number of whole hops the input affords: P = pow2floor((len(x)-K)/Hop+1).
// The zero value estimates with the paper's geometry (K=256, M=64,
// Hop=64, rectangular window).
type FAM struct {
	// Params configures the channelizer and grid. K is the channelizer
	// size, M the surface half-extent, Hop the channelizer advance
	// (default K/4 — the classical 75% overlap), Window the analysis
	// window (a Hamming window is the conventional FAM choice; the
	// default is rectangular for comparability with the direct method).
	// Blocks is ignored: the smoothing length is derived from the input.
	Params scf.Params
	// Workers bounds the goroutines evaluating surface rows concurrently.
	// 0 means runtime.GOMAXPROCS(0); 1 forces the serial path. Rows are
	// partitioned across workers, each cell written exactly once, so
	// every worker count produces bit-identical surfaces.
	Workers int
}

// Name implements scf.Estimator.
func (FAM) Name() string { return "fam" }

// MinSamples returns the shortest input Estimate accepts for the
// configured geometry: two channelizer hops.
func (e FAM) MinSamples() int {
	p := famDefaults(e.Params, 0)
	return p.K + p.Hop
}

// Estimate implements scf.Estimator.
func (e FAM) Estimate(x []complex128) (*scf.Surface, *scf.Stats, error) {
	p := famDefaults(e.Params, 0)
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	hops := 0
	if len(x) >= p.K {
		hops = (len(x)-p.K)/p.Hop + 1
	}
	np := pow2Floor(hops)
	if np < 2 {
		return nil, nil, needSamples("FAM", p.K+p.Hop, len(x))
	}
	var win []float64
	var err error
	if p.Window != fft.Rectangular {
		if win, err = fft.Window(p.Window, p.K); err != nil {
			return nil, nil, err
		}
	}
	ch, err := channelize(x, p.K, p.Hop, np, win)
	if err != nil {
		return nil, nil, err
	}
	// The a >= 0 rows to evaluate: the full half-plane, or only the
	// candidate rows when alpha pruning is on (the mirrors come from the
	// final Hermitian pass either way, so pruning skips entire
	// conjugate-product rows without touching the per-cell arithmetic).
	m := p.M - 1
	rowSet := p.CandidateRows()
	if rowSet == nil {
		rowSet = make([]int, m+1)
		for a := range rowSet {
			rowSet[a] = a
		}
	}
	// Hoist the conjugation out of the α/f loops: every cell (f, a) reads
	// conj of channel f-a, so conjugating each addressed channel once
	// replaces (2M-1)²·P per-cell conjugations with one pass per channel.
	// Only the residues f-a the evaluated rows span are conjugated (for
	// the full default M = K/4 geometry that is nearly all of them, but
	// small-M grids and pruned candidate sets touch only a sliver).
	conjSet := make([]int, 0, 4*m+1)
	seen := make([]bool, p.K)
	for _, a := range rowSet {
		for f := -m; f <= m; f++ {
			if k := fft.BinIndex(p.K, f-a); !seen[k] {
				seen[k] = true
				conjSet = append(conjSet, k)
			}
		}
	}
	chc := make([][]complex128, p.K)
	ccells := make([]complex128, len(conjSet)*np)
	for _, k := range conjSet {
		chc[k], ccells = ccells[:np], ccells[np:]
		for n, c := range ch[k] {
			chc[k][n] = cmplx.Conj(c)
		}
	}
	s := scf.NewSurfaceFor(p)
	// The FAM surface is exactly Hermitian in α: the cell (f, -a) sums
	// x_{f-a}(n)·conj(x_{f+a}(n)) — the termwise conjugate of cell (f, a)
	// in the same order — so only the a >= 0 rows are evaluated and the
	// a < 0 rows mirrored by conjugation, bit-identical to evaluating
	// them directly (conjugation is exact in floating point).
	rows := len(rowSet)
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		for _, a := range rowSet {
			famRow(s.Row(a), ch, chc, p.K, a, m, np)
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < rows; i += workers {
					a := rowSet[i]
					famRow(s.Row(a), ch, chc, p.K, a, m, np)
				}
			}(w)
		}
		wg.Wait()
	}
	s.MirrorHermitian()
	// Stats keep charging the canonical per-cell P-point second FFT —
	// the operation-count model of the paper's complexity comparison —
	// even though the implementation evaluates only its bin 0 as an O(P)
	// dot product (model vs measured; see famRow and the README). With
	// alpha pruning the count covers only the held rows.
	cells := p.DSCFMults()
	stats := &scf.Stats{
		Blocks:    np,
		FFTMults:  np*fft.ComplexMults(p.K) + cells*fft.ComplexMults(np),
		DSCFMults: np*p.K + cells*np,
	}
	return s, stats, nil
}

// famRow fills one cycle-frequency row of the surface: row[f+m] for
// f in [-m, m] at offset a. Each cell is bin 0 of the P-point second FFT
// of the channel-pair product sequence, which is algebraically the plain
// sum Σ_n x_{f+a}(n)·conj(x_{f-a}(n)) — an O(P) complex dot product in
// place of the O(P·logP) per-cell FFT (only bin 0 lands on the coarse
// surface grid: with hop K/4 the neighbouring bins refine α by half-row
// steps, falling between grid rows rather than filling them). The loop
// allocates nothing.
func famRow(row []complex128, ch, chc [][]complex128, k, a, m, np int) {
	inv := complex(1/float64(np), 0)
	// K is a power of two (Params.Validate), so the f±a bin wrap-around is
	// a masked increment instead of a per-cell modulo.
	mask := k - 1
	pi := (a - m) & mask
	qi := (-a - m) & mask
	for f := -m; f <= m; f++ {
		cc := chc[qi][:np]
		// Slicing cp to len(cc) lets the compiler drop the bounds check
		// on cc inside the loop.
		cp := ch[pi][:len(cc)]
		// Two interleaved accumulators: P is a power of two (always
		// even here), and the split halves the floating-point add
		// dependency chain the loop is otherwise latency-bound on.
		var s0, s1 complex128
		for n := 1; n < len(cp); n += 2 {
			s0 += cp[n-1] * cc[n-1]
			s1 += cp[n] * cc[n]
		}
		row[f+m] = (s0 + s1) * inv
		pi = (pi + 1) & mask
		qi = (qi + 1) & mask
	}
}

// WithAlphaCandidates implements scf.CandidateEstimator.
func (e FAM) WithAlphaCandidates(alphas []int) (scf.StreamingEstimator, error) {
	if len(alphas) == 0 {
		return e, nil
	}
	p := famDefaults(e.Params, 0)
	p.AlphaCandidates = append([]int(nil), alphas...)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	e.Params = p
	return e, nil
}

var _ scf.Estimator = FAM{}
