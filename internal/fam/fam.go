package fam

import (
	"math/cmplx"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/scf"
)

// FAM is the FFT Accumulation Method estimator: a K-point channelizer
// hopping by Hop samples (default K/4) with an analysis window, complex
// downconversion of every channel, and a P-point second FFT across the
// channelizer hops for every surface cell's channel-pair product
// sequence. Bin 0 of the second FFT — the cyclic component at exactly
// the cell's cycle frequency α = 2a/K — fills the cell.
//
// P, the smoothing length, is the largest power of two not exceeding the
// number of whole hops the input affords: P = pow2floor((len(x)-K)/Hop+1).
// The zero value estimates with the paper's geometry (K=256, M=64,
// Hop=64, rectangular window).
type FAM struct {
	// Params configures the channelizer and grid. K is the channelizer
	// size, M the surface half-extent, Hop the channelizer advance
	// (default K/4 — the classical 75% overlap), Window the analysis
	// window (a Hamming window is the conventional FAM choice; the
	// default is rectangular for comparability with the direct method).
	// Blocks is ignored: the smoothing length is derived from the input.
	Params scf.Params
}

// Name implements scf.Estimator.
func (FAM) Name() string { return "fam" }

// MinSamples returns the shortest input Estimate accepts for the
// configured geometry: two channelizer hops.
func (e FAM) MinSamples() int {
	p := famDefaults(e.Params, 0)
	return p.K + p.Hop
}

// Estimate implements scf.Estimator.
func (e FAM) Estimate(x []complex128) (*scf.Surface, *scf.Stats, error) {
	p := famDefaults(e.Params, 0)
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	hops := 0
	if len(x) >= p.K {
		hops = (len(x)-p.K)/p.Hop + 1
	}
	np := pow2Floor(hops)
	if np < 2 {
		return nil, nil, needSamples("FAM", p.K+p.Hop, len(x))
	}
	var win []float64
	var err error
	if p.Window != fft.Rectangular {
		if win, err = fft.Window(p.Window, p.K); err != nil {
			return nil, nil, err
		}
	}
	ch, err := channelize(x, p.K, p.Hop, np, win)
	if err != nil {
		return nil, nil, err
	}
	plan2, err := fft.NewPlan(np)
	if err != nil {
		return nil, nil, err
	}
	s := scf.NewSurface(p.M)
	prod := make([]complex128, np)
	spec2 := make([]complex128, np)
	inv := complex(1/float64(np), 0)
	m := p.M - 1
	for a := -m; a <= m; a++ {
		for f := -m; f <= m; f++ {
			cp := ch[fft.BinIndex(p.K, f+a)]
			cm := ch[fft.BinIndex(p.K, f-a)]
			for n := 0; n < np; n++ {
				prod[n] = cp[n] * cmplx.Conj(cm[n])
			}
			// The P-point second FFT is the defining FAM operation and is
			// charged in Stats at its canonical cost, even though only
			// bin 0 lands on the coarse surface grid: with hop K/4 the
			// neighbouring bins refine α by 4q/(P·K) — half-row steps,
			// the first whole-row bin |q|=P/2 being the alias boundary —
			// so the fine-α mesh falls between grid rows rather than
			// filling them.
			if err := plan2.Forward(spec2, prod); err != nil {
				return nil, nil, err
			}
			s.Add(f, a, spec2[0]*inv)
		}
	}
	cells := p.P() * p.F()
	stats := &scf.Stats{
		Blocks:    np,
		FFTMults:  np*fft.ComplexMults(p.K) + cells*fft.ComplexMults(np),
		DSCFMults: np*p.K + cells*np,
	}
	return s, stats, nil
}

var _ scf.Estimator = FAM{}
