package fam

import (
	"testing"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/fixed"
	"tiledcfd/internal/scf"
)

// withKernels runs fn with the process-wide kernel selection pinned,
// restoring the previous selection afterwards.
func withKernels(t *testing.T, k fixed.Kernels, fn func()) {
	t.Helper()
	prev := fixed.Use(k)
	defer fixed.Use(prev)
	fn()
}

// TestQ15EstimatorsKernelImplInvariant is the end-to-end SWAR
// acceptance criterion: running the full FAM-Q15 and SSCA-Q15 pipelines
// under the scalar reference kernels and under the SWAR kernels yields
// bit-identical QSurfaces — words, exponent and gain — across Workers
// settings, dense and alpha-pruned grids, both scaling policies, and
// the streaming accumulators; only Stats.Kernel may differ, and it must
// name the implementation that actually ran.
func TestQ15EstimatorsKernelImplInvariant(t *testing.T) {
	band := q15TestBand(t, 1600, 41)
	params := []scf.Params{
		{K: 64, M: 16},
		{K: 64, M: 16, Window: fft.Hann, AlphaCandidates: []int{0, 2, 9}},
	}
	policies := []fft.ScalingPolicy{fft.ScaleBFP, fft.ScaleUniform}
	for pi, p := range params {
		for _, policy := range policies {
			for _, w := range []int{1, 4, 8} {
				fam := FAMQ15{Params: p, Workers: w, InputPeak: 1.5, Policy: policy}
				ssca := SSCAQ15{Params: p, Workers: w, InputPeak: 1.5, Policy: policy}
				type result struct {
					fam, ssca, famAcc, sscaAcc *scf.QSurface
					famKern, sscaKern          string
				}
				results := map[string]*result{}
				for _, kern := range []fixed.Kernels{fixed.ScalarKernels{}, fixed.SWARKernels{}} {
					r := &result{}
					withKernels(t, kern, func() {
						q, stats, err := fam.EstimateQ15(band)
						if err != nil {
							t.Fatal(err)
						}
						r.fam, r.famKern = q, stats.Kernel
						q, stats, err = ssca.EstimateQ15(band)
						if err != nil {
							t.Fatal(err)
						}
						r.ssca, r.sscaKern = q, stats.Kernel
						facc, err := fam.NewAccumulator()
						if err != nil {
							t.Fatal(err)
						}
						pushChunks(t, facc, band, []int{190})
						r.famAcc = q15SnapshotQ15(t, facc)
						sacc, err := ssca.NewAccumulator()
						if err != nil {
							t.Fatal(err)
						}
						pushChunks(t, sacc, band, []int{190})
						r.sscaAcc = q15SnapshotQ15(t, sacc)
					})
					if r.famKern != kern.Name() || r.sscaKern != kern.Name() {
						t.Fatalf("Stats.Kernel = %q/%q under %q kernels", r.famKern, r.sscaKern, kern.Name())
					}
					results[kern.Name()] = r
				}
				sc, sw := results["scalar"], results["swar"]
				for _, cmp := range []struct {
					label    string
					ref, got *scf.QSurface
				}{
					{"FAM-Q15 batch", sc.fam, sw.fam},
					{"SSCA-Q15 batch", sc.ssca, sw.ssca},
					{"FAM-Q15 accumulator", sc.famAcc, sw.famAcc},
					{"SSCA-Q15 accumulator", sc.sscaAcc, sw.sscaAcc},
				} {
					if ok, diff := cmp.ref.Equal(cmp.got); !ok {
						t.Errorf("params[%d] %v Workers=%d: %s scalar vs swar: %s",
							pi, policy, w, cmp.label, diff)
					}
				}
			}
		}
	}
}

// TestQ15ChannelizerBatchAllocs guards the steady-state allocation
// behaviour of the batched strip machinery underneath the estimators:
// with rows, window and plan in hand, windowing + the batched FFT +
// downconversion allocate only the batch's exponent slice, regardless
// of hop count.
func TestQ15ChannelizerBatchAllocs(t *testing.T) {
	const k, hops = 256, 32
	kern := fixed.Active()
	plan, err := fft.NewFixedPlan(k)
	if err != nil {
		t.Fatal(err)
	}
	roots, err := fft.FixedRoots(k)
	if err != nil {
		t.Fatal(err)
	}
	win, err := fft.FixedWindow(fft.Hann, k)
	if err != nil {
		t.Fatal(err)
	}
	band := q15TestBand(t, k+hops, 42)
	xq, _ := quantiseQ15(band, len(band), 0.5, 1.5)
	rows := make([][]fixed.Complex, hops)
	for i := range rows {
		rows[i] = make([]fixed.Complex, k)
	}
	if a := testing.AllocsPerRun(10, func() {
		for i := range rows {
			kern.ScaleReal(rows[i], xq[i:i+k], win)
		}
		if _, err := plan.ForwardScaledBatchWith(kern, rows, fft.ScaleBFP); err != nil {
			t.Fatal(err)
		}
		for i := range rows {
			kern.MulRoots(rows[i], rows[i], roots, 0, i&(k-1), k-1)
		}
	}); a > 1 {
		t.Errorf("batched strip pass allocates %v times per snapshot, want <= 1", a)
	}
}
