package fam

import (
	"fmt"
	"math/cmplx"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/scf"
)

// This file implements scf.Accumulator for the FAM and the SSCA: the
// incremental twins of the two batch estimators, bit-identical to
// Estimate on the concatenated stream (golden equivalence tests in
// accumulator_test.go).
//
// The structural obstacle both share is that their smoothing length is a
// function of the total input length — FAM averages over the largest
// power of two of channelizer hops, the SSCA strip FFT spans the largest
// power of two of samples — so a naive running sum over *all* arrived
// hops would diverge from the batch result whenever the hop count is not
// a power of two. The two accumulators resolve this differently:
//
//   - FAM keeps per-cell running sums in arrival order and *checkpoints*
//     them every time the hop count reaches a power of two; Snapshot
//     reads the latest checkpoint, which by construction is the sum over
//     exactly the first pow2floor(hops) hops — the batch prefix.
//   - The SSCA accumulates the cheap part incrementally (the per-sample
//     channelizer and conjugate product, the O(n·K·logK) bulk of the
//     work) into per-channel product strips, and defers only the strip
//     FFTs — O(strips·N·logN) — to Snapshot, where N is known.

// NewAccumulator implements scf.StreamingEstimator. Workers is ignored:
// accumulators process hops in arrival order on the caller's goroutine
// (streaming parallelism lives across channels, in the stream engine's
// worker pool).
func (e FAM) NewAccumulator() (scf.Accumulator, error) {
	p := famDefaults(e.Params, 0)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var win []float64
	var err error
	if p.Window != fft.Rectangular {
		if win, err = fft.Window(p.Window, p.K); err != nil {
			return nil, err
		}
	}
	plan, err := fft.PlanFor(p.K)
	if err != nil {
		return nil, err
	}
	roots, err := fft.Roots(p.K)
	if err != nil {
		return nil, err
	}
	a := &famAccumulator{p: p, plan: plan, roots: roots, win: win}
	a.init()
	return a, nil
}

var _ scf.StreamingEstimator = FAM{}

// famAccumulator is the incremental FAM. Each completed channelizer hop
// is windowed, FFT'd and downconverted exactly as channelize does, then
// folded into per-cell running sums. The sums are split by hop parity
// (acc0 for even hops, acc1 for odd) because famRow sums each cell with
// two interleaved accumulators — keeping the same split keeps the
// floating-point addition order identical, hence bit-identical surfaces.
// Only the a >= 0 rows are accumulated; Snapshot mirrors the rest, as the
// batch path does.
type famAccumulator struct {
	p     scf.Params
	plan  *fft.Plan
	roots []complex128
	win   []float64

	// rowSet lists the a >= 0 rows the accumulator maintains: 0..M-1, or
	// only the candidate rows under alpha pruning.
	rowSet []int
	// acc0/acc1 are the parity-split per-cell sums, indexed
	// [i][f+M-1] with i positional in rowSet; ck0/ck1 are their copies
	// at the last power-of-two hop count ckHops.
	acc0, acc1 [][]complex128
	ck0, ck1   [][]complex128
	hops       int
	ckHops     int

	buf      []complex128 // unprocessed stream tail; buf[0] is sample bufStart
	bufStart int
	total    int

	spec, chn, chc, winbuf []complex128 // private per-hop scratch
}

func (f *famAccumulator) init() {
	m := f.p.M - 1
	f.rowSet = f.p.CandidateRows()
	if f.rowSet == nil {
		f.rowSet = make([]int, m+1)
		for a := range f.rowSet {
			f.rowSet[a] = a
		}
	}
	rows, cols := len(f.rowSet), 2*m+1
	grid := func() [][]complex128 {
		data := make([][]complex128, rows)
		cells := make([]complex128, rows*cols)
		for i := range data {
			data[i], cells = cells[:cols], cells[cols:]
		}
		return data
	}
	f.acc0, f.acc1 = grid(), grid()
	f.ck0, f.ck1 = grid(), grid()
	f.spec = make([]complex128, f.p.K)
	f.chn = make([]complex128, f.p.K)
	f.chc = make([]complex128, f.p.K)
}

// Name implements scf.Accumulator.
func (f *famAccumulator) Name() string { return "fam" }

// Samples implements scf.Accumulator.
func (f *famAccumulator) Samples() int { return f.total }

// Ready implements scf.Accumulator: the batch path needs at least two
// hops of smoothing.
func (f *famAccumulator) Ready() bool { return f.ckHops >= 2 }

// Push implements scf.Accumulator.
func (f *famAccumulator) Push(samples []complex128) error {
	f.buf = append(f.buf, samples...)
	f.total += len(samples)
	k, hop := f.p.K, f.p.Hop
	for {
		start := f.hops * hop
		if f.bufStart+len(f.buf) < start+k {
			// Keep only what the next hop reads (compacting once per
			// push keeps the cost linear in the chunk).
			f.buf, f.bufStart = scf.TrimBefore(f.buf, f.bufStart, start)
			return nil
		}
		block := f.buf[start-f.bufStart : start-f.bufStart+k]
		if f.win != nil {
			if f.winbuf == nil {
				f.winbuf = make([]complex128, k)
			}
			if err := fft.ApplyWindowInto(f.winbuf, block, f.win); err != nil {
				return err
			}
			block = f.winbuf
		}
		if err := f.plan.Forward(f.spec, block); err != nil {
			return err
		}
		// Downconvert with the absolute-time reference, as channelize
		// does: exponent (start·v) mod k advances by start per channel.
		step := start & (k - 1)
		idx := 0
		for v := 0; v < k; v++ {
			f.chn[v] = f.spec[v] * f.roots[idx]
			f.chc[v] = cmplx.Conj(f.chn[v])
			idx = (idx + step) & (k - 1)
		}
		// Fold the hop into the parity accumulator famRow would have
		// used: cell (f, a) gains x_{f+a}(n)·conj(x_{f-a}(n)).
		tgt := f.acc0
		if f.hops&1 == 1 {
			tgt = f.acc1
		}
		m := f.p.M - 1
		mask := k - 1
		for i, a := range f.rowSet {
			row := tgt[i]
			pi := (a - m) & mask
			qi := (-a - m) & mask
			for fi := range row {
				row[fi] += f.chn[pi] * f.chc[qi]
				pi = (pi + 1) & mask
				qi = (qi + 1) & mask
			}
		}
		f.hops++
		if f.hops&(f.hops-1) == 0 {
			// Power-of-two hop count: checkpoint the prefix sums.
			for a := range f.acc0 {
				copy(f.ck0[a], f.acc0[a])
				copy(f.ck1[a], f.acc1[a])
			}
			f.ckHops = f.hops
		}
	}
}

// Snapshot implements scf.Accumulator. It reads the checkpoint at
// P = pow2floor(hops) — the sums over exactly the hops the batch path
// would smooth — normalises each cell by 1/P as famRow does, and mirrors
// the a < 0 rows.
func (f *famAccumulator) Snapshot() (*scf.Surface, *scf.Stats, error) {
	if f.ckHops < 2 {
		return nil, nil, needSamples("FAM", f.p.K+f.p.Hop, f.total)
	}
	np := f.ckHops
	inv := complex(1/float64(np), 0)
	s := scf.NewSurfaceFor(f.p)
	for i, a := range f.rowSet {
		row := s.Row(a)
		c0, c1 := f.ck0[i], f.ck1[i]
		for fi := range row {
			row[fi] = (c0[fi] + c1[fi]) * inv
		}
	}
	s.MirrorHermitian()
	cells := f.p.DSCFMults()
	stats := &scf.Stats{
		Blocks:    np,
		FFTMults:  np*fft.ComplexMults(f.p.K) + cells*fft.ComplexMults(np),
		DSCFMults: np*f.p.K + cells*np,
	}
	return s, stats, nil
}

// Reset implements scf.Accumulator.
func (f *famAccumulator) Reset() {
	for _, g := range [][][]complex128{f.acc0, f.acc1, f.ck0, f.ck1} {
		for _, row := range g {
			for i := range row {
				row[i] = 0
			}
		}
	}
	f.hops, f.ckHops = 0, 0
	f.buf = f.buf[:0]
	f.bufStart = 0
	f.total = 0
}

// NewAccumulator implements scf.StreamingEstimator. With N set the
// accumulator's state is bounded (it stops extending its strips at N
// hops and every snapshot transforms exactly those); with N zero the
// strips grow with the stream — about (4M-3)·16 bytes per sample — and
// each snapshot spans the largest power-of-two prefix, so long-running
// monitors should either set N or reset the accumulator between windows
// (the stream engine's windowed mode does the latter). Workers is
// ignored, as for FAM.
func (e SSCA) NewAccumulator() (scf.Accumulator, error) {
	p := famDefaults(e.Params, 1)
	p.Hop = 1
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if e.N != 0 {
		if e.N < p.K {
			return nil, needSamples("SSCA", 2*p.K-1, e.N)
		}
		if !fft.IsPow2(e.N) {
			return nil, fmt.Errorf("fam: SSCA strip length N=%d must be a power of two", e.N)
		}
	}
	var win []float64
	var err error
	if p.Window != fft.Rectangular {
		if win, err = fft.Window(p.Window, p.K); err != nil {
			return nil, err
		}
	}
	plan, err := fft.PlanFor(p.K)
	if err != nil {
		return nil, err
	}
	roots, err := fft.Roots(p.K)
	if err != nil {
		return nil, err
	}
	a := &sscaAccumulator{p: p, nFixed: e.N, plan: plan, roots: roots, win: win}
	a.init()
	return a, nil
}

var _ scf.StreamingEstimator = SSCA{}

// sscaAccumulator is the incremental SSCA. Every arriving sample
// completes one more position of the unit-hop channelizer; the
// accumulator runs the K-point FFT, downconverts, and multiplies each
// addressed channel by the conjugate centre-aligned input sample —
// exactly the product sequence batch stripInto builds — appending one
// entry per needed channel per sample. Snapshot performs the N-point
// strip FFTs over the prefix of length N = pow2floor(hops) (or the fixed
// N), applies the group-delay phase correction and fills the surface,
// line for line the batch tail of SSCA.Estimate.
type sscaAccumulator struct {
	p      scf.Params
	nFixed int
	plan   *fft.Plan
	roots  []complex128
	win    []float64

	rowAlphas []int          // surface rows to fill: all of [-m, m], or the candidate set
	needed    []int          // addressed channel indices, batch order
	rotIdx    []int          // per needed channel: running derotation index (v·hops mod K)
	prods     [][]complex128 // per needed channel: product sequence, one entry per hop
	hops      int

	buf      []complex128
	bufStart int
	total    int

	spec, winbuf []complex128
}

func (s *sscaAccumulator) init() {
	m := s.p.M - 1
	s.rowAlphas = s.p.SurfaceAlphas()
	if s.rowAlphas == nil {
		s.rowAlphas = make([]int, 2*m+1)
		for i := range s.rowAlphas {
			s.rowAlphas[i] = i - m
		}
	}
	// Only the channels the held rows address get strips: the residues
	// f+a mod K per row a — the full [-2m, 2m] band, or the candidate
	// strips under alpha pruning.
	seen := make([]bool, s.p.K)
	for _, a := range s.rowAlphas {
		for f := -m; f <= m; f++ {
			if k := fft.BinIndex(s.p.K, f+a); !seen[k] {
				seen[k] = true
				s.needed = append(s.needed, k)
			}
		}
	}
	s.rotIdx = make([]int, len(s.needed))
	s.prods = make([][]complex128, len(s.needed))
	if s.nFixed != 0 {
		// The strip length is known up front: reserve it so the
		// steady-state Push loop never reallocates a product slice.
		cells := make([]complex128, 0, len(s.needed)*s.nFixed)
		for i := range s.prods {
			s.prods[i] = cells[:0:s.nFixed]
			cells = cells[s.nFixed:s.nFixed]
		}
	}
	s.spec = make([]complex128, s.p.K)
}

// Name implements scf.Accumulator.
func (s *sscaAccumulator) Name() string { return "ssca" }

// Samples implements scf.Accumulator.
func (s *sscaAccumulator) Samples() int { return s.total }

// stripLen returns the strip length a snapshot would use now, or 0 when
// too few hops have arrived.
func (s *sscaAccumulator) stripLen() int {
	if s.nFixed != 0 {
		if s.hops >= s.nFixed {
			return s.nFixed
		}
		return 0
	}
	if n := pow2Floor(s.hops); n >= s.p.K {
		return n
	}
	return 0
}

// Ready implements scf.Accumulator.
func (s *sscaAccumulator) Ready() bool { return s.stripLen() != 0 }

// Push implements scf.Accumulator.
func (s *sscaAccumulator) Push(samples []complex128) error {
	s.buf = append(s.buf, samples...)
	s.total += len(samples)
	k := s.p.K
	centre := k / 2
	for {
		start := s.hops // unit hop: hop m starts at sample m
		if s.nFixed != 0 && s.hops >= s.nFixed {
			// Strips are complete; later samples can only be discarded
			// (the fixed-N estimate spans the first N hops). Drop
			// everything so memory stays flat; bufStart advances to the
			// absolute index of the next sample to arrive.
			s.buf = s.buf[:0]
			s.bufStart = s.total
			return nil
		}
		if s.bufStart+len(s.buf) < start+k {
			// Keep only the K-1 overlap tail the next hop reads
			// (compacting once per push keeps the cost linear).
			s.buf, s.bufStart = scf.TrimBefore(s.buf, s.bufStart, start)
			return nil
		}
		block := s.buf[start-s.bufStart : start-s.bufStart+k]
		if s.win != nil {
			if s.winbuf == nil {
				s.winbuf = make([]complex128, k)
			}
			if err := fft.ApplyWindowInto(s.winbuf, block, s.win); err != nil {
				return err
			}
			block = s.winbuf
		}
		if err := s.plan.Forward(s.spec, block); err != nil {
			return err
		}
		// The conjugate centre-aligned factor of this strip position.
		xc := cmplx.Conj(s.buf[start-s.bufStart+centre])
		// Downconvert only the needed channels and append their product
		// entries. The derotation exponent (start·v) mod k advances by
		// exactly v per unit hop, so each channel carries a running table
		// index (rotIdx) instead of recomputing the v·start product — and
		// the spec/roots/prods headers are hoisted out of the per-channel
		// loop so nothing is reloaded per iteration.
		spec, roots, prods, rot := s.spec, s.roots, s.prods, s.rotIdx
		mask := k - 1
		for i, v := range s.needed {
			idx := rot[i]
			prods[i] = append(prods[i], spec[v]*roots[idx]*xc)
			rot[i] = (idx + v) & mask
		}
		s.hops++
	}
}

// Snapshot implements scf.Accumulator.
func (s *sscaAccumulator) Snapshot() (*scf.Surface, *scf.Stats, error) {
	n := s.stripLen()
	if n == 0 {
		need := 2*s.p.K - 1
		if s.nFixed != 0 {
			need = s.nFixed + s.p.K - 1
		}
		return nil, nil, needSamples("SSCA", need, s.total)
	}
	planN, err := fft.PlanFor(n)
	if err != nil {
		return nil, nil, err
	}
	rootsN, err := fft.Roots(n)
	if err != nil {
		return nil, nil, err
	}
	centre := s.p.K / 2
	m := s.p.M - 1
	strips := make([][]complex128, s.p.K)
	scells := make([]complex128, len(s.needed)*n)
	for i, k := range s.needed {
		u := scells[:n]
		scells = scells[n:]
		if err := planN.Forward(u, s.prods[i][:n]); err != nil {
			return nil, nil, err
		}
		derotate(u, rootsN, centre)
		strips[k] = u
	}
	sf := scf.NewSurfaceFor(s.p)
	inv := complex(1/float64(n), 0)
	for i, a := range s.rowAlphas {
		row := sf.Data[i]
		for f := -m; f <= m; f++ {
			u := strips[fft.BinIndex(s.p.K, f+a)]
			q := fft.BinIndex(n, n/s.p.K*(a-f))
			row[f+m] = u[q] * inv
		}
	}
	stats := &scf.Stats{
		Blocks:    n,
		FFTMults:  n*fft.ComplexMults(s.p.K) + len(s.needed)*fft.ComplexMults(n),
		DSCFMults: n*s.p.K + len(s.needed)*n,
	}
	return sf, stats, nil
}

// Reset implements scf.Accumulator.
func (s *sscaAccumulator) Reset() {
	for i := range s.prods {
		s.prods[i] = s.prods[i][:0]
	}
	for i := range s.rotIdx {
		s.rotIdx[i] = 0
	}
	s.hops = 0
	s.buf = s.buf[:0]
	s.bufStart = 0
	s.total = 0
}
