package quant

import (
	"fmt"
	"math"
	"math/cmplx"

	"tiledcfd/internal/scf"
)

// FixedEstimator is the contract of a Q15 backend: a regular estimator
// whose native output is an exponent-tracked Q15 surface. fam.FAMQ15 and
// fam.SSCAQ15 implement it.
type FixedEstimator interface {
	scf.Estimator
	EstimateQ15(x []complex128) (*scf.QSurface, *scf.Stats, error)
}

// SurfaceSQNR returns the signal-to-quantisation-noise ratio in dB
// between a reference surface and an approximation of it:
// 10·log10(Σ|ref|² / Σ|ref-got|²). +Inf for bit-identical surfaces; the
// function panics on extent mismatch (programming error).
func SurfaceSQNR(ref, got *scf.Surface) float64 {
	if ref.M != got.M {
		panic(fmt.Sprintf("quant: SurfaceSQNR extents %d vs %d", ref.M, got.M))
	}
	var sig, noise float64
	for i := range ref.Data {
		for j := range ref.Data[i] {
			r := ref.Data[i][j]
			d := r - got.Data[i][j]
			sig += real(r)*real(r) + imag(r)*imag(r)
			noise += real(d)*real(d) + imag(d)*imag(d)
		}
	}
	if noise == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(sig/noise)
}

// PeakBias returns the relative magnitude error of got at the reference
// surface's strongest cyclic feature (a != 0): (|got|-|ref|)/|ref|.
// Negative means the fixed path under-reads the feature a detector
// thresholds. Zero-reference surfaces return NaN.
func PeakBias(ref, got *scf.Surface) float64 {
	f, a, mag := ref.MaxFeature(true)
	if mag == 0 {
		return math.NaN()
	}
	return (cmplx.Abs(got.At(f, a)) - mag) / mag
}

// Comparison is one fixed-vs-float accuracy measurement on one band.
type Comparison struct {
	// SQNRdB is the whole-surface signal-to-quantisation-noise ratio.
	SQNRdB float64
	// PeakBias is the relative magnitude error at the float peak feature.
	PeakBias float64
	// SaturatedCells counts Q15 cells pinned at a rail after the
	// surface-level renormalisation.
	SaturatedCells int
	// Exp is the Q15 surface's block exponent.
	Exp int
	// Cycles is the fixed backend's modeled Montium cycle cost.
	Cycles int64
}

// Compare runs the float reference and the Q15 backend over the same
// samples and reports the deviation figures.
func Compare(x []complex128, fe FixedEstimator, ref scf.Estimator) (*Comparison, error) {
	rs, _, err := ref.Estimate(x)
	if err != nil {
		return nil, fmt.Errorf("quant: %s reference: %w", ref.Name(), err)
	}
	q, stats, err := fe.EstimateQ15(x)
	if err != nil {
		return nil, fmt.Errorf("quant: %s: %w", fe.Name(), err)
	}
	gs := q.Float()
	return &Comparison{
		SQNRdB:         SurfaceSQNR(rs, gs),
		PeakBias:       PeakBias(rs, gs),
		SaturatedCells: q.Saturated(),
		Exp:            q.Exp,
		Cycles:         stats.Cycles,
	}, nil
}
