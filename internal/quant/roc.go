package quant

import (
	"fmt"
	"math"

	"tiledcfd/internal/detect"
	"tiledcfd/internal/fam"
	"tiledcfd/internal/scf"
	"tiledcfd/internal/sig"
)

// ROCConfig parameterises a detector ROC sweep: estimator × detector ×
// modulation × SNR, each curve traced by sweeping the detector's
// operating parameter (target Pfa for the asymptotic tests, the
// peak-over-floor scale for cfar) and measuring Pd and Pfa by Monte
// Carlo — the measurement that validates the closed-form thresholds
// against reality.
type ROCConfig struct {
	// K is the estimation geometry's FFT size (default 64); the
	// modulation presets' cycle-frequency bins are expressed at this K.
	K int
	// Samples is the window length per trial (default 4096).
	Samples int
	// Trials is the Monte-Carlo count per hypothesis per curve
	// (default 200).
	Trials int
	// Estimators names the surface estimators swept (default direct,
	// fam). Sample-based detectors (dg, urriza) decide on the raw window
	// whichever estimator the channel runs — their curves are measured
	// once and reported under every estimator tag, which is exactly the
	// engine's behaviour; cfar curves are measured per estimator, whose
	// surfaces genuinely differ.
	Estimators []string
	// Detectors names the decision layers swept (default dg, urriza;
	// cfar is also accepted).
	Detectors []string
	// Modulations names the licensed-user waveforms swept (default
	// bpsk, msk, ofdm, scfdma). Each has a preset cycle set at K=64.
	Modulations []string
	// SNRsDB are the H1 signal-to-noise ratios swept (default -2, 2, 6,
	// 10).
	SNRsDB []float64
	// TargetPfas are the asymptotic detectors' operating points
	// (default 0.01, 0.05, 0.1, 0.2).
	TargetPfas []float64
	// CFARScales are the cfar detector's operating points (default 1.5,
	// 2, 3, 4).
	CFARScales []float64
	// Confidence sets the binomial confidence interval of the
	// Pfa-accuracy check (default 0.95).
	Confidence float64
	// Seed makes the sweep deterministic (default 1).
	Seed uint64
}

// withDefaults fills the zero fields.
func (c ROCConfig) withDefaults() ROCConfig {
	if c.K == 0 {
		c.K = 64
	}
	if c.Samples == 0 {
		c.Samples = 4096
	}
	if c.Trials == 0 {
		c.Trials = 200
	}
	if len(c.Estimators) == 0 {
		c.Estimators = []string{"direct", "fam"}
	}
	if len(c.Detectors) == 0 {
		c.Detectors = []string{"dg", "urriza"}
	}
	if len(c.Modulations) == 0 {
		c.Modulations = []string{"bpsk", "msk", "ofdm", "scfdma"}
	}
	if len(c.SNRsDB) == 0 {
		c.SNRsDB = []float64{-2, 2, 6, 10}
	}
	if len(c.TargetPfas) == 0 {
		c.TargetPfas = []float64{0.01, 0.05, 0.1, 0.2}
	}
	if len(c.CFARScales) == 0 {
		c.CFARScales = []float64{1.5, 2, 3, 4}
	}
	if c.Confidence == 0 {
		c.Confidence = 0.95
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ROCPoint is one operating point of one curve.
type ROCPoint struct {
	// TargetPfa is the asymptotic detectors' configured false-alarm
	// probability (0 for cfar, whose operating parameter is the scale).
	TargetPfa float64 `json:"target_pfa,omitempty"`
	// Threshold is the decision threshold actually applied — closed-form
	// from TargetPfa for dg/urriza, the scale itself for cfar.
	Threshold float64 `json:"threshold"`
	// MeasuredPfa is the H0 false-alarm fraction over Trials windows.
	MeasuredPfa float64 `json:"measured_pfa"`
	// CILow/CIHigh bracket the binomial confidence interval around
	// TargetPfa at the configured Confidence (asymptotic detectors
	// only).
	CILow  float64 `json:"ci_low,omitempty"`
	CIHigh float64 `json:"ci_high,omitempty"`
	// PfaWithinCI reports the Pfa-accuracy check: MeasuredPfa inside
	// [CILow, CIHigh]. Always true for cfar, which promises no Pfa.
	PfaWithinCI bool `json:"pfa_within_ci"`
	// Pd are the H1 detection fractions, aligned with the report's
	// SNRsDB.
	Pd []float64 `json:"pd"`
}

// ROCCurve is one estimator × detector × modulation family of operating
// points.
type ROCCurve struct {
	Estimator  string `json:"estimator"`
	Detector   string `json:"detector"`
	Modulation string `json:"modulation"`
	// AlphaBins is the candidate cycle set tested (bin offsets at the
	// report's K); Lags the dg lag set when it departs from the default.
	AlphaBins []int      `json:"alpha_bins"`
	Lags      []int      `json:"lags,omitempty"`
	Points    []ROCPoint `json:"points"`
}

// ROCReport is a completed ROC sweep.
type ROCReport struct {
	K          int        `json:"k"`
	Samples    int        `json:"samples"`
	Trials     int        `json:"trials"`
	Confidence float64    `json:"confidence"`
	SNRsDB     []float64  `json:"snrs_db"`
	Curves     []ROCCurve `json:"curves"`
}

// rocModulation is one waveform preset: a source constructor plus the
// cycle set its features live at (bin offsets at K=64) and the dg lag
// set that sees them. The bins come from a DG cycle-frequency scan of
// each waveform: bpsk peaks at 2f_c (a=8) with symbol-rate sidelobes,
// msk at 2f_c±1/(2T) (a=10, a=6), and the CP waveforms at the symbol
// rate 1/(NFFT+CP) (a=2, a=4) — visible only at lag NFFT, where the
// cyclic prefix correlates with the symbol tail.
type rocModulation struct {
	name string
	bins []int
	lags []int
	mk   func(rng *sig.Rand) sig.Source
}

// rocModulations returns the preset table (K=64 bin offsets).
func rocModulations() []rocModulation {
	return []rocModulation{
		{"bpsk", []int{8, 4}, nil, func(rng *sig.Rand) sig.Source {
			return &sig.BPSK{Amp: 1, Carrier: 0.125, SymbolLen: 8, Rng: rng}
		}},
		{"msk", []int{10, 6}, nil, func(rng *sig.Rand) sig.Source {
			return &sig.MSK{Amp: 1, Carrier: 0.125, SymbolLen: 8, Rng: rng}
		}},
		{"ofdm", []int{2, 4}, []int{12}, func(rng *sig.Rand) sig.Source {
			return &sig.OFDM{Amp: 1, NFFT: 12, CP: 4, ActiveLow: 1, ActiveHigh: 10, Rng: rng}
		}},
		{"scfdma", []int{2, 4}, []int{12}, func(rng *sig.Rand) sig.Source {
			return &sig.SCFDMA{Amp: 1, NFFT: 12, CP: 4, Spread: 8, Start: 1, Rng: rng}
		}},
	}
}

// rocStatistic computes one window's detection statistic; thresholds
// are derived separately per operating point so each window is measured
// once and swept across every point.
type rocStatistic func(x []complex128, s *scf.Surface) (float64, error)

// RunROC executes the ROC sweep. Every curve's statistics are computed
// once per hypothesis and compared against each operating point's
// threshold — the detectors' statistics do not depend on the target
// Pfa, only the thresholds do.
func RunROC(cfg ROCConfig) (*ROCReport, error) {
	cfg = cfg.withDefaults()
	rep := &ROCReport{
		K: cfg.K, Samples: cfg.Samples, Trials: cfg.Trials,
		Confidence: cfg.Confidence, SNRsDB: cfg.SNRsDB,
	}
	presets := map[string]rocModulation{}
	for _, m := range rocModulations() {
		presets[m.name] = m
	}
	seed := cfg.Seed
	for _, modName := range cfg.Modulations {
		mod, ok := presets[modName]
		if !ok {
			return nil, fmt.Errorf("quant: unknown ROC modulation %q (want bpsk, msk, ofdm, scfdma)", modName)
		}
		cycles, err := detect.CyclesForBins(mod.bins, cfg.K)
		if err != nil {
			return nil, err
		}
		for _, detName := range cfg.Detectors {
			seed += 1009
			switch detName {
			case "dg", "urriza":
				curve, err := rocAsymptoticCurve(cfg, mod, cycles, detName, seed)
				if err != nil {
					return nil, err
				}
				// Sample-based detectors ignore the surface, so one
				// measured curve serves every estimator tag — the same
				// invariance the engine exhibits.
				for _, estName := range cfg.Estimators {
					c := *curve
					c.Estimator = estName
					rep.Curves = append(rep.Curves, c)
				}
			case "cfar":
				for _, estName := range cfg.Estimators {
					curve, err := rocCFARCurve(cfg, mod, estName, seed)
					if err != nil {
						return nil, err
					}
					rep.Curves = append(rep.Curves, *curve)
				}
			default:
				return nil, fmt.Errorf("quant: unknown ROC detector %q (want dg, urriza, cfar)", detName)
			}
		}
	}
	return rep, nil
}

// rocAsymptoticCurve measures one dg/urriza curve: Trials statistics
// under each hypothesis, swept across the TargetPfas' closed-form
// thresholds, with the binomial Pfa-accuracy check per point.
func rocAsymptoticCurve(cfg ROCConfig, mod rocModulation, cycles []float64, detName string, seed uint64) (*ROCCurve, error) {
	stat, thresholdAt, lags, err := asymptoticStatistic(detName, cycles, mod.lags)
	if err != nil {
		return nil, err
	}
	h0, h1, err := rocStats(cfg, mod, seed, func(x []complex128) (float64, error) { return stat(x) })
	if err != nil {
		return nil, err
	}
	curve := &ROCCurve{Detector: detName, Modulation: mod.name, AlphaBins: mod.bins, Lags: lags}
	for _, pfa := range cfg.TargetPfas {
		th, err := thresholdAt(pfa)
		if err != nil {
			return nil, err
		}
		pt := ROCPoint{TargetPfa: pfa, Threshold: th}
		pt.MeasuredPfa = exceedFraction(h0, th)
		if pt.CILow, pt.CIHigh, err = detect.BinomialCI(pfa, cfg.Trials, cfg.Confidence); err != nil {
			return nil, err
		}
		pt.PfaWithinCI = pt.MeasuredPfa >= pt.CILow && pt.MeasuredPfa <= pt.CIHigh
		for _, stats := range h1 {
			pt.Pd = append(pt.Pd, exceedFraction(stats, th))
		}
		curve.Points = append(curve.Points, pt)
	}
	return curve, nil
}

// asymptoticStatistic builds the statistic evaluator and the
// pfa→threshold map of one sample-based detector.
func asymptoticStatistic(detName string, cycles []float64, lags []int) (func([]complex128) (float64, error), func(float64) (float64, error), []int, error) {
	switch detName {
	case "dg":
		dg := detect.DG{Cycles: cycles, Lags: lags}
		return dg.Statistic, func(pfa float64) (float64, error) {
			d := dg
			d.Pfa = pfa
			return d.Threshold()
		}, lags, nil
	case "urriza":
		ur := detect.Urriza{Cycles: cycles}
		return ur.Statistic, func(pfa float64) (float64, error) {
			u := ur
			u.Pfa = pfa
			return u.Threshold()
		}, nil, nil
	}
	return nil, nil, nil, fmt.Errorf("quant: no asymptotic statistic for %q", detName)
}

// rocCFARCurve measures one cfar curve on the named estimator's
// surface, swept across the scale operating points. CFAR calibrates
// itself against the surface's own noise floor and promises no Pfa, so
// the accuracy check is vacuously true and the curve reports measured
// rates only. Unlike the asymptotic detectors, CFAR needs the full
// alpha surface — its noise floor comes from the off-peak rows, which a
// pruned candidate set would remove — so AlphaBins stays empty here.
func rocCFARCurve(cfg ROCConfig, mod rocModulation, estName string, seed uint64) (*ROCCurve, error) {
	est, err := rocEstimator(cfg, estName, nil)
	if err != nil {
		return nil, err
	}
	cfar := detect.CFAR{MinAbsA: 2, Scale: cfg.CFARScales[0]}
	statFn := func(x []complex128) (float64, error) {
		s, _, err := est.Estimate(x)
		if err != nil {
			return 0, err
		}
		cd, err := cfar.Examine(s)
		if err != nil {
			return 0, err
		}
		return cd.Statistic, nil
	}
	h0, h1, err := rocStats(cfg, mod, seed, statFn)
	if err != nil {
		return nil, err
	}
	curve := &ROCCurve{Estimator: estName, Detector: "cfar", Modulation: mod.name}
	for _, scale := range cfg.CFARScales {
		pt := ROCPoint{Threshold: scale, PfaWithinCI: true}
		pt.MeasuredPfa = exceedFraction(h0, scale)
		for _, stats := range h1 {
			pt.Pd = append(pt.Pd, exceedFraction(stats, scale))
		}
		curve.Points = append(curve.Points, pt)
	}
	return curve, nil
}

// rocEstimator builds the named surface estimator over the ROC geometry
// with the modulation's candidate set.
func rocEstimator(cfg ROCConfig, name string, bins []int) (scf.Estimator, error) {
	p := scf.Params{K: cfg.K, M: cfg.K / 4, AlphaCandidates: bins}
	switch name {
	case "direct":
		p.Blocks = cfg.Samples / cfg.K
		return scf.Direct{Params: p}, nil
	case "fam":
		return fam.FAM{Params: p}, nil
	case "ssca":
		return fam.SSCA{Params: p}, nil
	}
	return nil, fmt.Errorf("quant: unknown ROC estimator %q (want direct, fam, ssca)", name)
}

// rocStats runs the Monte-Carlo trials of one curve: Trials H0 windows
// (unit complex white noise) and Trials H1 windows per SNR (the
// modulated user plus calibrated noise), returning each window's
// statistic.
func rocStats(cfg ROCConfig, mod rocModulation, seed uint64, stat func([]complex128) (float64, error)) (h0 []float64, h1 [][]float64, err error) {
	rng := sig.NewRand(seed)
	h0 = make([]float64, cfg.Trials)
	for t := range h0 {
		x := sig.Samples(&sig.WGN{Sigma: 1, Rng: rng}, cfg.Samples)
		if h0[t], err = stat(x); err != nil {
			return nil, nil, fmt.Errorf("quant: %s H0 trial %d: %w", mod.name, t, err)
		}
	}
	h1 = make([][]float64, len(cfg.SNRsDB))
	for i, snr := range cfg.SNRsDB {
		h1[i] = make([]float64, cfg.Trials)
		for t := range h1[i] {
			x := sig.Samples(mod.mk(rng), cfg.Samples)
			if x, _, err = sig.AddAWGN(x, snr, false, rng); err != nil {
				return nil, nil, err
			}
			if h1[i][t], err = stat(x); err != nil {
				return nil, nil, fmt.Errorf("quant: %s H1 trial %d at %g dB: %w", mod.name, t, snr, err)
			}
		}
	}
	return h0, h1, nil
}

// exceedFraction is the fraction of statistics above the threshold.
func exceedFraction(stats []float64, threshold float64) float64 {
	n := 0
	for _, s := range stats {
		if s > threshold {
			n++
		}
	}
	return float64(n) / float64(len(stats))
}

// PfaAccuracy summarises the report's Pfa-accuracy checks: the worst
// absolute error between measured and target Pfa across asymptotic
// points, and the list of points outside their confidence interval —
// the CI gate cfdbench applies to the detection scenario.
func (r *ROCReport) PfaAccuracy() (worstErr float64, failures []string) {
	for _, c := range r.Curves {
		for _, p := range c.Points {
			if p.TargetPfa == 0 {
				continue
			}
			if e := math.Abs(p.MeasuredPfa - p.TargetPfa); e > worstErr {
				worstErr = e
			}
			if !p.PfaWithinCI {
				failures = append(failures, fmt.Sprintf("%s/%s/%s pfa=%g measured=%g outside [%g, %g]",
					c.Estimator, c.Detector, c.Modulation, p.TargetPfa, p.MeasuredPfa, p.CILow, p.CIHigh))
			}
		}
	}
	return worstErr, failures
}
