package quant

import (
	"reflect"
	"testing"
)

// small ROC config: one modulation, both detector families, quick trials.
func smallROC() ROCConfig {
	return ROCConfig{
		Trials:      30,
		Estimators:  []string{"direct", "fam"},
		Detectors:   []string{"dg", "cfar"},
		Modulations: []string{"bpsk"},
		SNRsDB:      []float64{0, 6},
		TargetPfas:  []float64{0.1, 0.2},
		CFARScales:  []float64{2, 3},
		Seed:        5,
	}
}

func TestRunROCStructure(t *testing.T) {
	rep, err := RunROC(smallROC())
	if err != nil {
		t.Fatal(err)
	}
	// One curve per estimator × detector × modulation.
	if want := 2 * 2 * 1; len(rep.Curves) != want {
		t.Fatalf("%d curves, want %d", len(rep.Curves), want)
	}
	if rep.K != 64 || rep.Samples != 4096 || rep.Trials != 30 {
		t.Fatalf("geometry not recorded: %+v", rep)
	}
	for _, c := range rep.Curves {
		wantPoints := 2 // TargetPfas for dg, CFARScales for cfar
		if len(c.Points) != wantPoints {
			t.Fatalf("%s/%s/%s: %d points, want %d", c.Estimator, c.Detector, c.Modulation,
				len(c.Points), wantPoints)
		}
		// Asymptotic detectors record their candidate cycle bins; cfar
		// scans the full surface and leaves AlphaBins empty.
		if c.Detector != "cfar" && len(c.AlphaBins) == 0 {
			t.Fatalf("%s/%s/%s: no alpha bins recorded", c.Estimator, c.Detector, c.Modulation)
		}
		for _, p := range c.Points {
			if len(p.Pd) != len(rep.SNRsDB) {
				t.Fatalf("point Pd length %d, want %d (SNR alignment)", len(p.Pd), len(rep.SNRsDB))
			}
			if p.Threshold <= 0 {
				t.Fatalf("non-positive threshold %v", p.Threshold)
			}
			for _, pd := range p.Pd {
				if pd < 0 || pd > 1 {
					t.Fatalf("Pd %v outside [0,1]", pd)
				}
			}
		}
		// Lower target Pfa (stricter) must mean a higher threshold; cfar
		// points are ordered by growing scale, so thresholds rise there.
		if c.Detector == "dg" {
			if c.Points[0].TargetPfa >= c.Points[1].TargetPfa {
				t.Fatalf("dg points not in TargetPfas order")
			}
			if c.Points[0].Threshold <= c.Points[1].Threshold {
				t.Fatalf("dg threshold not decreasing in target Pfa: %v then %v",
					c.Points[0].Threshold, c.Points[1].Threshold)
			}
		}
	}
}

// Sample-based detectors decide on the raw window regardless of the
// surface estimator, so their curves must be identical across estimator
// tags — the documented sharing, asserted.
func TestRunROCSampleCurvesEstimatorInvariant(t *testing.T) {
	rep, err := RunROC(smallROC())
	if err != nil {
		t.Fatal(err)
	}
	var direct, famc *ROCCurve
	for i := range rep.Curves {
		c := &rep.Curves[i]
		if c.Detector != "dg" {
			continue
		}
		switch c.Estimator {
		case "direct":
			direct = c
		case "fam":
			famc = c
		}
	}
	if direct == nil || famc == nil {
		t.Fatal("missing dg curves")
	}
	if !reflect.DeepEqual(direct.Points, famc.Points) {
		t.Fatal("dg curves differ across estimator tags; sample-based decisions must be estimator-invariant")
	}
}

func TestRunROCDeterministic(t *testing.T) {
	a, err := RunROC(smallROC())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunROC(smallROC())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config and seed produced different reports")
	}
}

func TestRunROCUnknownNames(t *testing.T) {
	cfg := smallROC()
	cfg.Detectors = []string{"nope"}
	if _, err := RunROC(cfg); err == nil {
		t.Error("unknown detector accepted")
	}
	cfg = smallROC()
	cfg.Modulations = []string{"fm"}
	if _, err := RunROC(cfg); err == nil {
		t.Error("unknown modulation accepted")
	}
}

func TestPfaAccuracy(t *testing.T) {
	rep := &ROCReport{Curves: []ROCCurve{{
		Estimator: "direct", Detector: "dg", Modulation: "bpsk",
		Points: []ROCPoint{
			{TargetPfa: 0.05, MeasuredPfa: 0.06, PfaWithinCI: true},
			{TargetPfa: 0.1, MeasuredPfa: 0.2, PfaWithinCI: false},
			{MeasuredPfa: 0.5, PfaWithinCI: true}, // cfar-style point: no target, skipped
		},
	}}}
	worst, failures := rep.PfaAccuracy()
	if worst < 0.0999 || worst > 0.1001 {
		t.Errorf("worst error %v, want 0.1", worst)
	}
	if len(failures) != 1 {
		t.Fatalf("%d failures, want 1: %v", len(failures), failures)
	}
}
