package quant

import (
	"fmt"
	"math"

	"tiledcfd/internal/detect"
	"tiledcfd/internal/fam"
	"tiledcfd/internal/fft"
	"tiledcfd/internal/scf"
	"tiledcfd/internal/sig"
)

// Config parameterises a word-level accuracy sweep.
type Config struct {
	// K and M set the estimator geometry (defaults 256 and K/4). Samples
	// is the band length per trial (default 8·K).
	K, M, Samples int
	// Backends names the estimator pairs to sweep: "fam", "ssca"
	// (default both).
	Backends []string
	// Backoffs are the input conditioning gains swept (default
	// 1, 0.5, 0.25, 0.125 — 0 to 18 dB of headroom).
	Backoffs []float64
	// Policies are the FFT stage-scaling policies swept (default
	// block-floating-point and uniform).
	Policies []fft.ScalingPolicy
	// SNRsDB are the licensed-user SNRs swept (default 10, 0 dB).
	SNRsDB []float64
	// DetectionTrials > 0 additionally estimates the detection
	// probability of both paths at thresholds calibrated to TargetPfa
	// (this multiplies the sweep cost by ~3·trials; default 0 = skip).
	DetectionTrials int
	// TargetPfa is the calibrated false-alarm rate (default 0.1).
	TargetPfa float64
	// Carrier and SymbolLen shape the BPSK licensed user (defaults
	// 0.125 and 8, the repo-wide scenario).
	Carrier   float64
	SymbolLen int
	// Seed makes the sweep deterministic (default 1).
	Seed uint64
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 256
	}
	if c.M == 0 {
		c.M = c.K / 4
	}
	if c.Samples == 0 {
		c.Samples = 8 * c.K
	}
	if len(c.Backends) == 0 {
		c.Backends = []string{"fam", "ssca"}
	}
	if len(c.Backoffs) == 0 {
		c.Backoffs = []float64{1, 0.5, 0.25, 0.125}
	}
	if len(c.Policies) == 0 {
		c.Policies = []fft.ScalingPolicy{fft.ScaleBFP, fft.ScaleUniform}
	}
	if len(c.SNRsDB) == 0 {
		c.SNRsDB = []float64{10, 0}
	}
	if c.TargetPfa == 0 {
		c.TargetPfa = 0.1
	}
	if c.Carrier == 0 {
		c.Carrier = 0.125
	}
	if c.SymbolLen == 0 {
		c.SymbolLen = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Point is one sweep measurement: a backend under one word-level
// configuration against its float reference.
type Point struct {
	Backend string  `json:"backend"`
	Policy  string  `json:"policy"`
	Backoff float64 `json:"backoff"`
	SNRdB   float64 `json:"snr_db"`

	SQNRdB         float64 `json:"sqnr_db"`
	PeakBias       float64 `json:"peak_bias"`
	SaturatedCells int     `json:"saturated_cells"`
	Exp            int     `json:"exp"`
	Cycles         int64   `json:"cycles"`

	// PdFloat/PdFixed are filled only when Config.DetectionTrials > 0.
	PdFloat float64 `json:"pd_float,omitempty"`
	PdFixed float64 `json:"pd_fixed,omitempty"`
	PdDelta float64 `json:"pd_delta,omitempty"`
}

// Report is a completed sweep.
type Report struct {
	K, M, Samples int
	Points        []Point
}

// pair builds the (fixed, float) estimator pair of one backend under one
// word-level configuration.
func pair(backend string, p scf.Params, backoff float64, policy fft.ScalingPolicy) (FixedEstimator, scf.Estimator, error) {
	switch backend {
	case "fam":
		return fam.FAMQ15{Params: p, InputScale: backoff, Policy: policy},
			fam.FAM{Params: p}, nil
	case "ssca":
		return fam.SSCAQ15{Params: p, InputScale: backoff, Policy: policy},
			fam.SSCA{Params: p}, nil
	}
	return nil, nil, fmt.Errorf("quant: unknown backend %q (want fam or ssca)", backend)
}

// Run executes the sweep: for every backend × policy × backoff × SNR it
// synthesises the deterministic BPSK band, compares the Q15 surface
// against the float reference, and (with DetectionTrials set) estimates
// the detection-probability delta at calibrated thresholds.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{K: cfg.K, M: cfg.M, Samples: cfg.Samples}
	params := scf.Params{K: cfg.K, M: cfg.M}
	const bpskPower = 0.5 // Amp=1 real BPSK carrier
	seed := cfg.Seed
	for _, backend := range cfg.Backends {
		for _, policy := range cfg.Policies {
			for _, backoff := range cfg.Backoffs {
				for _, snr := range cfg.SNRsDB {
					fe, ref, err := pair(backend, params, backoff, policy)
					if err != nil {
						return nil, err
					}
					noisePower := bpskPower / math.Pow(10, snr/10)
					scenario := func(rng *sig.Rand, present bool) []complex128 {
						noise := sig.Samples(&sig.WGN{Sigma: math.Sqrt(noisePower), Real: true, Rng: rng}, cfg.Samples)
						if !present {
							return noise
						}
						s := sig.Samples(&sig.BPSK{Amp: 1, Carrier: cfg.Carrier, SymbolLen: cfg.SymbolLen, Rng: rng}, cfg.Samples)
						for i := range s {
							s[i] += noise[i]
						}
						return s
					}
					seed++
					band := scenario(sig.NewRand(seed), true)
					cmp, err := Compare(band, fe, ref)
					if err != nil {
						return nil, err
					}
					pt := Point{
						Backend: backend, Policy: policy.String(),
						Backoff: backoff, SNRdB: snr,
						SQNRdB: cmp.SQNRdB, PeakBias: cmp.PeakBias,
						SaturatedCells: cmp.SaturatedCells,
						Exp:            cmp.Exp, Cycles: cmp.Cycles,
					}
					if cfg.DetectionTrials > 0 {
						pdFloat, pdFixed, err := pdPair(fe, ref, scenario, cfg.DetectionTrials, cfg.TargetPfa, seed)
						if err != nil {
							return nil, err
						}
						pt.PdFloat, pt.PdFixed = pdFloat, pdFixed
						pt.PdDelta = pdFixed - pdFloat
					}
					rep.Points = append(rep.Points, pt)
				}
			}
		}
	}
	return rep, nil
}

// pdPair calibrates both paths to the same false-alarm rate on the same
// scenario and estimates each one's detection probability — the
// detection-layer view of the quantisation loss.
func pdPair(fe FixedEstimator, ref scf.Estimator, sc detect.Scenario, trials int, pfa float64, seed uint64) (pdFloat, pdFixed float64, err error) {
	for i, est := range []scf.Estimator{ref, fe} {
		d := detect.CFDDetector{MinAbsA: 2, Estimator: est}
		th, err := detect.CalibrateThreshold(d, sc, trials, pfa, seed+uint64(i)*17)
		if err != nil {
			return 0, 0, err
		}
		pd, _, err := detect.PdAtThreshold(d, sc, trials, th, seed+uint64(i)*17+1)
		if err != nil {
			return 0, 0, err
		}
		if i == 0 {
			pdFloat = pd
		} else {
			pdFixed = pd
		}
	}
	return pdFloat, pdFixed, nil
}
