package quant

import (
	"math"
	"testing"

	"tiledcfd/internal/fam"
	"tiledcfd/internal/fft"
	"tiledcfd/internal/scf"
	"tiledcfd/internal/sig"
)

func testBand(t testing.TB, n int, seed uint64) []complex128 {
	t.Helper()
	rng := sig.NewRand(seed)
	b := &sig.BPSK{Amp: 1, Carrier: 0.125, SymbolLen: 8, Rng: rng}
	x := sig.Samples(b, n)
	noisy, _, err := sig.AddAWGN(x, 10, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	return noisy
}

// TestSurfaceSQNRBasics: identical surfaces are +Inf; a known
// perturbation produces the closed-form ratio.
func TestSurfaceSQNRBasics(t *testing.T) {
	a := scf.NewSurface(3)
	for _, row := range a.Data {
		for i := range row {
			row[i] = 1
		}
	}
	b := scf.NewSurface(3)
	for _, row := range b.Data {
		for i := range row {
			row[i] = 1
		}
	}
	if s := SurfaceSQNR(a, b); !math.IsInf(s, 1) {
		t.Errorf("identical surfaces SQNR = %v, want +Inf", s)
	}
	// Perturb one of 25 unit cells by 0.5: SQNR = 10log10(25/0.25) = 20 dB.
	b.Data[0][0] = 1.5
	if s := SurfaceSQNR(a, b); math.Abs(s-20) > 1e-9 {
		t.Errorf("SQNR = %v, want 20", s)
	}
}

// TestPeakBiasReadsRefPeakCell: bias is measured at the reference peak,
// not at got's own peak.
func TestPeakBiasReadsRefPeakCell(t *testing.T) {
	ref := scf.NewSurface(3)
	ref.Add(1, 2, 4) // peak feature at (1,2), a != 0
	got := scf.NewSurface(3)
	got.Add(1, 2, 3)
	got.Add(-1, -2, 10) // larger elsewhere; must not be read
	if b := PeakBias(ref, got); math.Abs(b-(-0.25)) > 1e-12 {
		t.Errorf("PeakBias = %v, want -0.25", b)
	}
	if b := PeakBias(scf.NewSurface(3), got); !math.IsNaN(b) {
		t.Errorf("zero-reference PeakBias = %v, want NaN", b)
	}
}

// TestCompareReportsQ15Figures runs a real pair on the small geometry.
func TestCompareReportsQ15Figures(t *testing.T) {
	band := testBand(t, 1024, 5)
	p := scf.Params{K: 64, M: 16}
	cmp, err := Compare(band, fam.FAMQ15{Params: p}, fam.FAM{Params: p})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.SQNRdB < 35 {
		t.Errorf("small-geometry FAM SQNR = %.1f dB, want >= 35", cmp.SQNRdB)
	}
	if math.Abs(cmp.PeakBias) > 0.05 {
		t.Errorf("peak bias = %v, want |bias| <= 5%%", cmp.PeakBias)
	}
	if cmp.Cycles <= 0 {
		t.Errorf("cycles = %d, want > 0", cmp.Cycles)
	}
}

// TestSweepRuns exercises the full grid on a small geometry and checks
// the structural invariants of the report.
func TestSweepRuns(t *testing.T) {
	rep, err := Run(Config{
		K: 64, M: 16, Samples: 1024,
		Backoffs: []float64{0.5, 0.125},
		SNRsDB:   []float64{10},
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 backends × 2 policies × 2 backoffs × 1 SNR.
	if len(rep.Points) != 8 {
		t.Fatalf("sweep produced %d points, want 8", len(rep.Points))
	}
	for _, pt := range rep.Points {
		if math.IsNaN(pt.SQNRdB) || pt.SQNRdB < 0 {
			t.Errorf("%s/%s backoff=%v: SQNR %v out of range", pt.Backend, pt.Policy, pt.Backoff, pt.SQNRdB)
		}
		if pt.Cycles <= 0 {
			t.Errorf("%s/%s: no cycle cost charged", pt.Backend, pt.Policy)
		}
	}
	// The BFP policy must not lose to uniform scaling anywhere on the
	// sweep (that is its purpose); compare matched configurations.
	sqnr := map[string]float64{}
	for _, pt := range rep.Points {
		sqnr[pt.Backend+pt.Policy+fmtF(pt.Backoff)] = pt.SQNRdB
	}
	for _, backend := range []string{"fam", "ssca"} {
		for _, backoff := range []string{fmtF(0.5), fmtF(0.125)} {
			b, u := sqnr[backend+"bfp"+backoff], sqnr[backend+"uniform"+backoff]
			if b < u-1 { // 1 dB slack for measurement noise
				t.Errorf("%s backoff=%s: BFP %.1f dB < uniform %.1f dB", backend, backoff, b, u)
			}
		}
	}
}

// TestSweepDetectionDelta runs the detection-probability arm on a tiny
// configuration and checks the probabilities are sane.
func TestSweepDetectionDelta(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo arm")
	}
	rep, err := Run(Config{
		K: 64, M: 16, Samples: 512,
		Backends:        []string{"fam"},
		Backoffs:        []float64{0.5},
		Policies:        []fft.ScalingPolicy{fft.ScaleBFP},
		SNRsDB:          []float64{10},
		DetectionTrials: 12,
		Seed:            9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 1 {
		t.Fatalf("got %d points, want 1", len(rep.Points))
	}
	pt := rep.Points[0]
	for name, pd := range map[string]float64{"float": pt.PdFloat, "fixed": pt.PdFixed} {
		if pd < 0 || pd > 1 {
			t.Errorf("Pd %s = %v outside [0,1]", name, pd)
		}
	}
	// At 10 dB in-band SNR both paths must detect essentially always.
	if pt.PdFloat < 0.9 || pt.PdFixed < 0.9 {
		t.Errorf("10 dB Pd float=%v fixed=%v, want both >= 0.9", pt.PdFloat, pt.PdFixed)
	}
	if math.Abs(pt.PdDelta-(pt.PdFixed-pt.PdFloat)) > 1e-12 {
		t.Errorf("PdDelta inconsistent: %v", pt)
	}
}

// TestSweepUnknownBackend rejects misspelled backends.
func TestSweepUnknownBackend(t *testing.T) {
	if _, err := Run(Config{K: 64, M: 16, Backends: []string{"dscf"}}); err == nil {
		t.Error("unknown backend accepted")
	}
}

func fmtF(v float64) string { return string(rune('0' + int(v*8))) }
