// Package quant quantifies what the 16-bit fixed-point backends lose
// against the float references — the numerical side of the paper's
// section 4.1 dynamic-range argument, extended from the direct DSCF to
// the FAM and SSCA estimators.
//
// Three figures of merit are reported per configuration:
//
//   - surface SQNR: 10·log10 of reference surface energy over
//     quantisation-error energy, the word-level fidelity of the whole
//     spectral-correlation surface;
//   - feature-peak bias: the relative magnitude error at the float
//     path's strongest cyclic feature, the cell a detector actually
//     thresholds;
//   - detection-probability delta: Pd of the fixed backend minus Pd of
//     the float reference, both at thresholds calibrated to the same
//     false-alarm rate — the end-to-end cost of the 16-bit datapath.
//
// Sweep (Run) crosses input backoff, FFT stage-scaling policy
// (block-floating-point vs the Montium kernel's uniform 1/2 per stage)
// and SNR, producing the table examples/quantization prints and the
// fixed-point scenario cfdbench embeds in BENCH artifacts.
package quant
