package tile

import (
	"fmt"
	"math"
	"sort"

	"tiledcfd/internal/scf"
)

// Span is one task's occupancy of one tile in cycles [Start, End).
type Span struct {
	// Task is the task ID; Tile the tile it ran on.
	Task, Tile int
	// Start and End bound the task's execution in fabric cycles.
	Start, End int64
}

// Transfer is one producer's NoC movement to one destination tile. A
// producer whose output feeds several consumers on the same remote tile
// ships their data once (multicast within the tile is local), so
// transfers are keyed by (producer task, destination tile) and sized by
// the summed consumer demands capped at the producer's total distinct
// output — exact when consumers read disjoint slices (SSCA strips),
// the union when they overlap (FAM rows).
type Transfer struct {
	// From is the producing task.
	From int
	// FromTile and ToTile are the endpoint tiles.
	FromTile, ToTile int
	// Words is the payload in 16-bit words; Cycles the port
	// serialisation time it occupies at both endpoints.
	Words, Cycles int64
	// Start and End bound the port occupancy; the payload is available
	// to consumers at End plus the link latency.
	Start, End int64
}

// TileUse is one tile's accounted load over a scheduled window.
type TileUse struct {
	// Tile is the tile index.
	Tile int
	// Tasks counts the tasks mapped onto the tile.
	Tasks int
	// ComputeCycles is the tile's summed task cycle cost.
	ComputeCycles int64
	// SendWords and RecvWords count the 16-bit words the tile's NoC
	// ports moved out and in.
	SendWords, RecvWords int64
	// IOCycles is the port occupancy those words serialise to at the
	// fabric's link bandwidth.
	IOCycles int64
	// MemWords is the largest single-task resident footprint mapped to
	// the tile — the local-memory feasibility figure (tasks on one tile
	// run serially, so transient buffers do not stack; surfaces stream
	// out rather than residing whole).
	MemWords int64
}

// MemOK reports whether the tile's footprint fits the given local
// memory capacity.
func (u TileUse) MemOK(capacityWords int) bool { return u.MemWords <= int64(capacityWords) }

// Schedule is a task DAG list-scheduled onto a fabric with one mapping
// strategy: the predicted execution of one window.
type Schedule struct {
	// Graph is the scheduled pipeline.
	Graph *Graph
	// Fabric is the platform scheduled onto, with defaults applied.
	Fabric Fabric
	// Strategy names the mapping (Strategies lists the options).
	Strategy string
	// Assignment maps task ID to tile.
	Assignment []int
	// Spans holds every task's scheduled interval, in task-ID order.
	Spans []Span
	// Transfers lists the coalesced cross-tile movements the schedule
	// charged, in the order their first consumer demanded them.
	Transfers []Transfer
	// PerTile is the per-tile load accounting, indexed by tile.
	PerTile []TileUse
	// Makespan is the end-to-end latency of one window in cycles.
	Makespan int64
	// NoCWords and NoCCycles total the cross-tile traffic and its
	// modeled cost (serialisation plus per-transfer latency).
	NoCWords, NoCCycles int64
	// BottleneckCycles is the busiest tile's occupancy per window —
	// max over tiles of max(compute, NoC port cycles) — the steady-state
	// initiation interval when consecutive windows pipeline.
	BottleneckCycles int64
}

// NewSchedule maps g onto the fabric with the named strategy and
// list-schedules it: tasks run in topological (ID) order, each starting
// when its tile is free and all inputs have arrived. Cross-tile inputs
// queue on the endpoint tiles' NoC ports (one DMA engine per tile), pay
// the serialisation time at the link bandwidth plus the link latency,
// and are shipped once per destination tile however many consumers
// live there. The returned schedule is validated.
func NewSchedule(g *Graph, fab Fabric, strategy string) (*Schedule, error) {
	fab = fab.WithDefaults()
	if err := fab.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	asg, err := Assign(g, strategy, fab.Tiles)
	if err != nil {
		return nil, err
	}
	s := &Schedule{
		Graph:      g,
		Fabric:     fab,
		Strategy:   strategy,
		Assignment: asg,
		PerTile:    make([]TileUse, fab.Tiles),
	}
	for t := range s.PerTile {
		s.PerTile[t].Tile = t
	}
	// Coalesce: the words a producer must ship to each destination tile
	// is the sum of the consumer demands there, capped at the producer's
	// total distinct output (consumers reading disjoint slices sum
	// exactly; overlapping readers cannot need more than everything the
	// producer made).
	type route struct{ from, toTile int }
	groupWords := make(map[route]int64)
	for _, e := range g.Edges {
		if from, to := asg[e.From], asg[e.To]; from != to {
			groupWords[route{e.From, to}] += e.Words
		}
	}
	for r, words := range groupWords {
		if limit := g.Tasks[r.from].OutWords; limit > 0 && words > limit {
			groupWords[r] = limit
		}
	}
	in := g.inEdges()
	finish := make([]int64, len(g.Tasks))
	tileFree := make([]int64, fab.Tiles)
	portFree := make([]int64, fab.Tiles)
	arrived := make(map[route]int64) // payload availability at the destination
	for id, task := range g.Tasks {
		tile := asg[id]
		var ready int64
		for _, ei := range in[id] {
			e := g.Edges[ei]
			at := finish[e.From]
			if from := asg[e.From]; from != tile {
				r := route{e.From, tile}
				avail, ok := arrived[r]
				if !ok {
					// First consumer on this tile: schedule the transfer.
					words := groupWords[r]
					ser := serialCycles(words, fab.LinkWordsPerCycle)
					start := maxInt64(finish[e.From], portFree[from], portFree[tile])
					end := start + ser
					portFree[from], portFree[tile] = end, end
					avail = end + int64(fab.LinkLatency)
					arrived[r] = avail
					s.Transfers = append(s.Transfers, Transfer{
						From: e.From, FromTile: from, ToTile: tile,
						Words: words, Cycles: ser, Start: start, End: end,
					})
					s.NoCWords += words
					s.NoCCycles += ser + int64(fab.LinkLatency)
					s.PerTile[from].SendWords += words
					s.PerTile[tile].RecvWords += words
				}
				at = avail
			}
			if at > ready {
				ready = at
			}
		}
		start := maxInt64(ready, tileFree[tile])
		end := start + task.Cycles
		tileFree[tile] = end
		finish[id] = end
		s.Spans = append(s.Spans, Span{Task: id, Tile: tile, Start: start, End: end})
		u := &s.PerTile[tile]
		u.Tasks++
		u.ComputeCycles += task.Cycles
		if task.MemWords > u.MemWords {
			u.MemWords = task.MemWords
		}
		if end > s.Makespan {
			s.Makespan = end
		}
	}
	for t := range s.PerTile {
		u := &s.PerTile[t]
		u.IOCycles = serialCycles(u.SendWords+u.RecvWords, fab.LinkWordsPerCycle)
		busy := u.ComputeCycles
		if u.IOCycles > busy {
			busy = u.IOCycles
		}
		if busy > s.BottleneckCycles {
			s.BottleneckCycles = busy
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// serialCycles is the port time words occupy at the given bandwidth.
func serialCycles(words int64, wordsPerCycle float64) int64 {
	if words <= 0 {
		return 0
	}
	return int64(math.Ceil(float64(words) / wordsPerCycle))
}

func maxInt64(vs ...int64) int64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Validate re-derives the schedule's invariants from its spans rather
// than trusting construction: no tile runs two tasks at once, every
// cross-tile route (producer, destination tile) was charged exactly one
// NoC transfer, the per-tile compute accounting conserves the graph's
// total cycles, and the steady-state bottleneck never exceeds the
// one-window makespan.
func (s *Schedule) Validate() error {
	perTile := make([][]Span, s.Fabric.Tiles)
	for _, sp := range s.Spans {
		if sp.Tile < 0 || sp.Tile >= s.Fabric.Tiles {
			return fmt.Errorf("tile: span of task %d on tile %d outside fabric of %d", sp.Task, sp.Tile, s.Fabric.Tiles)
		}
		perTile[sp.Tile] = append(perTile[sp.Tile], sp)
	}
	for t, spans := range perTile {
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		for i := 1; i < len(spans); i++ {
			if spans[i].Start < spans[i-1].End {
				return fmt.Errorf("tile: tile %d oversubscribed: task %d [%d,%d) overlaps task %d [%d,%d)",
					t, spans[i].Task, spans[i].Start, spans[i].End,
					spans[i-1].Task, spans[i-1].Start, spans[i-1].End)
			}
		}
	}
	type route struct{ from, toTile int }
	routes := make(map[route]bool)
	for _, e := range s.Graph.Edges {
		if s.Assignment[e.From] != s.Assignment[e.To] {
			routes[route{e.From, s.Assignment[e.To]}] = true
		}
	}
	if len(routes) != len(s.Transfers) {
		return fmt.Errorf("tile: %d cross-tile routes but %d NoC transfers accounted", len(routes), len(s.Transfers))
	}
	for _, tr := range s.Transfers {
		if !routes[route{tr.From, tr.ToTile}] {
			return fmt.Errorf("tile: transfer of task %d to tile %d matches no cross-tile edge", tr.From, tr.ToTile)
		}
	}
	var compute int64
	for _, u := range s.PerTile {
		compute += u.ComputeCycles
	}
	if total := s.Graph.TotalCycles(); compute != total {
		return fmt.Errorf("tile: per-tile compute %d cycles does not conserve graph total %d", compute, total)
	}
	if s.BottleneckCycles > s.Makespan {
		return fmt.Errorf("tile: bottleneck %d cycles exceeds makespan %d", s.BottleneckCycles, s.Makespan)
	}
	return nil
}

// LatencyMicros converts the makespan to microseconds at the fabric
// clock.
func (s *Schedule) LatencyMicros() float64 {
	return float64(s.Makespan) / s.Fabric.ClockMHz
}

// SustainedSamplesPerSec is the predicted steady-state throughput when
// consecutive windows pipeline through the fabric: the window's samples
// over the bottleneck tile's occupancy.
func (s *Schedule) SustainedSamplesPerSec() float64 {
	if s.BottleneckCycles == 0 {
		return 0
	}
	return float64(s.Graph.WindowSamples) * s.Fabric.ClockMHz * 1e6 / float64(s.BottleneckCycles)
}

// OneShotSamplesPerSec is the single-window throughput: the window's
// samples over the end-to-end latency.
func (s *Schedule) OneShotSamplesPerSec() float64 {
	if s.Makespan == 0 {
		return 0
	}
	return float64(s.Graph.WindowSamples) * s.Fabric.ClockMHz * 1e6 / float64(s.Makespan)
}

// Utilization returns tile t's compute occupancy over the makespan, in
// [0, 1].
func (s *Schedule) Utilization(t int) float64 {
	if s.Makespan == 0 {
		return 0
	}
	return float64(s.PerTile[t].ComputeCycles) / float64(s.Makespan)
}

// MemFeasible reports whether every tile's footprint fits the fabric's
// local memory.
func (s *Schedule) MemFeasible() bool {
	for _, u := range s.PerTile {
		if !u.MemOK(s.Fabric.LocalMemWords) {
			return false
		}
	}
	return true
}

// PerTileStats exports the schedule's per-tile breakdown in the
// scf.Stats form, so mapping estimates ride the same stats plumbing as
// the estimators.
func (s *Schedule) PerTileStats() []scf.TileCycles {
	out := make([]scf.TileCycles, len(s.PerTile))
	for i, u := range s.PerTile {
		out[i] = scf.TileCycles{Tile: u.Tile, Compute: u.ComputeCycles, Transfer: u.IOCycles}
	}
	return out
}
