package tile

import "fmt"

// Kind classifies a task by the pipeline step it models; the scheduler
// treats all kinds alike, reports group by them.
type Kind int

// The task kinds of the estimator pipelines.
const (
	// KindChannelize is a channelizer step: read samples, K-point FFT
	// (with reshuffling), downconversion.
	KindChannelize Kind = iota
	// KindProduct is one surface row's conjugate-product accumulation
	// across the smoothing length (FAM/direct second stage).
	KindProduct
	// KindStrip is one SSCA channel strip: full-rate conjugate product
	// plus the N-point strip FFT and derotation.
	KindStrip
	// KindReduce is the final gather: normalisation, Hermitian
	// mirroring, surface assembly.
	KindReduce
)

// String returns the kind's report label.
func (k Kind) String() string {
	switch k {
	case KindChannelize:
		return "channelize"
	case KindProduct:
		return "product"
	case KindStrip:
		return "strip"
	case KindReduce:
		return "reduce"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Task is one schedulable unit of an estimator pipeline.
type Task struct {
	// ID is the task's index in Graph.Tasks (dense, topological: every
	// edge points from a lower to a higher ID).
	ID int
	// Name labels the task in reports, e.g. "chan[3]" or "row[a=+17]".
	Name string
	// Kind classifies the pipeline step.
	Kind Kind
	// Stage is the pipeline stage index (0 = channelizer, 1 = products/
	// strips, 2 = reduce); the pipelined strategy maps stages to tiles.
	Stage int
	// Shard is the data-parallel index within the stage (hop number, row
	// number, strip number); the sharded strategy distributes shards.
	Shard int
	// Cycles is the modeled Montium datapath cycle cost of the task,
	// charged from the internal/montium kernel models.
	Cycles int64
	// MemWords is the task's resident footprint in 16-bit words (inputs
	// plus outputs) while it runs — the local-memory feasibility figure.
	MemWords int64
	// OutWords is the task's total distinct output in 16-bit words — the
	// ceiling on what one NoC shipment of its result can carry. Consumer
	// edges on one destination tile are summed and capped at it (exact
	// when consumers read disjoint slices, the union when they overlap).
	// 0 means no cap (single-consumer outputs).
	OutWords int64
}

// Edge is a producer→consumer data dependency carrying Words 16-bit
// words (a Q15 complex value is two words). Same-tile edges cost
// nothing; cross-tile edges become NoC transfers.
type Edge struct {
	// From and To are task IDs, From < To.
	From, To int
	// Words is the payload in 16-bit words.
	Words int64
}

// Graph is an estimator pipeline partitioned into a task DAG.
type Graph struct {
	// Name identifies the pipeline, e.g. "fam".
	Name string
	// WindowSamples is the number of input samples one evaluation of the
	// graph consumes — the numerator of every throughput figure.
	WindowSamples int
	// Tasks holds the tasks indexed by ID.
	Tasks []Task
	// Edges holds the data dependencies.
	Edges []Edge
}

// Validate checks structural soundness: dense IDs, edges between valid
// tasks with From < To (which makes the graph acyclic and ID order a
// topological order), positive cycle costs.
func (g *Graph) Validate() error {
	if len(g.Tasks) == 0 {
		return fmt.Errorf("tile: graph %q has no tasks", g.Name)
	}
	for i, t := range g.Tasks {
		if t.ID != i {
			return fmt.Errorf("tile: graph %q task %d carries ID %d", g.Name, i, t.ID)
		}
		if t.Cycles < 0 {
			return fmt.Errorf("tile: graph %q task %s has negative cycles %d", g.Name, t.Name, t.Cycles)
		}
		if t.OutWords < 0 {
			return fmt.Errorf("tile: graph %q task %s has negative output words %d", g.Name, t.Name, t.OutWords)
		}
	}
	for _, e := range g.Edges {
		if e.From < 0 || e.From >= len(g.Tasks) || e.To < 0 || e.To >= len(g.Tasks) {
			return fmt.Errorf("tile: graph %q edge %d->%d outside tasks [0,%d)", g.Name, e.From, e.To, len(g.Tasks))
		}
		if e.From >= e.To {
			return fmt.Errorf("tile: graph %q edge %d->%d is not topological (want From < To)", g.Name, e.From, e.To)
		}
		if e.Words < 0 {
			return fmt.Errorf("tile: graph %q edge %d->%d carries negative words %d", g.Name, e.From, e.To, e.Words)
		}
	}
	return nil
}

// TotalCycles sums the compute cycles of every task — the single-tile
// serial cost of one window.
func (g *Graph) TotalCycles() int64 {
	var sum int64
	for _, t := range g.Tasks {
		sum += t.Cycles
	}
	return sum
}

// Stages returns the number of pipeline stages (max Stage + 1).
func (g *Graph) Stages() int {
	max := -1
	for _, t := range g.Tasks {
		if t.Stage > max {
			max = t.Stage
		}
	}
	return max + 1
}

// StageCycles returns the summed compute cycles per stage.
func (g *Graph) StageCycles() []int64 {
	out := make([]int64, g.Stages())
	for _, t := range g.Tasks {
		out[t.Stage] += t.Cycles
	}
	return out
}

// inEdges returns, per task ID, the indices into g.Edges of its incoming
// edges.
func (g *Graph) inEdges() [][]int {
	in := make([][]int, len(g.Tasks))
	for i, e := range g.Edges {
		in[e.To] = append(in[e.To], i)
	}
	return in
}
