package tile

import (
	"fmt"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/montium"
	"tiledcfd/internal/scf"
)

// BuildGraph partitions the named estimator pipeline over a window of n
// samples into a task DAG. Recognised names are "direct", "fam", "ssca"
// and their Q15 twins ("fam-q15", "ssca-q15" — same dataflow, and the
// cycle model is the fixed-point datapath's in every case); "platform"
// maps as the direct DSCF. Params zero fields take the paper's defaults
// (K=256, M=K/4); Params.Hop is honoured exactly as the estimators
// honour it (0 selects the estimator's default advance: K/4 for FAM, K
// for direct).
//
// The DAG has three stages: channelizer tasks (one per hop, or per hop
// chunk for the sample-sliding SSCA), second-stage tasks (one conjugate-
// product row per non-negative cycle offset for FAM/direct, one strip
// per addressed channel for SSCA), and one reduce task gathering the
// surface. Edge weights count the 16-bit words that must move from
// producer to consumer (a Q15 complex value is two words).
func BuildGraph(estimator string, p scf.Params, n int) (*Graph, error) {
	// Hop 0 is the "estimator default" sentinel; remember it before
	// WithDefaults rewrites it to the direct method's K.
	hop := p.Hop
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// A negative Hop is already rejected above: WithDefaults only
	// rewrites Hop == 0, so Params.Validate sees the negative value.
	switch estimator {
	case "direct", "platform":
		if hop == 0 {
			hop = p.K // non-overlapping blocks, the paper's advance
		}
		if n < p.K {
			return nil, fmt.Errorf("tile: direct pipeline needs >= %d samples, have %d", p.K, n)
		}
		blocks := (n-p.K)/hop + 1
		// An overlapping (hop not a whole-block multiple) advance makes
		// the absolute-time phase reference a real per-bin rotation,
		// exactly as scf.Compute applies it.
		return buildHopped("direct", p, blocks, hop, hop%p.K != 0), nil
	case "fam", "fam-q15":
		if hop == 0 {
			hop = p.K / 4 // the classical 75% overlap
		}
		np := pow2Floor((n-p.K)/hop + 1)
		if n < p.K+hop || np < 2 {
			return nil, fmt.Errorf("tile: FAM pipeline needs >= %d samples, have %d", p.K+hop, n)
		}
		return buildHopped("fam", p, np, hop, true), nil
	case "ssca", "ssca-q15":
		if hop != 0 {
			return nil, fmt.Errorf("tile: Hop=%d is meaningless for the SSCA pipeline "+
				"(its channelizer advances one sample per hop); leave Hop zero", hop)
		}
		ns := pow2Floor(n - p.K + 1)
		if ns < p.K {
			return nil, fmt.Errorf("tile: SSCA pipeline needs >= %d samples, have %d", 2*p.K-1, n)
		}
		return buildSSCA(p, ns), nil
	default:
		return nil, fmt.Errorf("tile: no pipeline model for estimator %q (want direct, fam, ssca or a -q15 twin)", estimator)
	}
}

// buildHopped builds the FAM/direct DAG: np channelizer hops advancing
// by hop samples, one product row per cycle offset a in [0, m] (the
// Hermitian half the implementations evaluate), one reduce.
// downconvert charges the per-hop K-point downconversion MAC pass (FAM;
// the direct method's whole-block advance makes it the identity).
func buildHopped(name string, p scf.Params, np, hop int, downconvert bool) *Graph {
	m := p.M - 1
	g := &Graph{Name: name, WindowSamples: p.K + (np-1)*hop}
	nch := distinctResidues(p.K, -2*m, 2*m)

	chanCycles := montium.ReadDataCycles(int64(p.K)) +
		montium.FFTKernelCycles(p.K) +
		montium.ReshuffleCycles(int64(p.K))
	if downconvert {
		chanCycles += montium.MACKernelCycles(int64(p.K))
	}
	for h := 0; h < np; h++ {
		g.Tasks = append(g.Tasks, Task{
			ID:    len(g.Tasks),
			Name:  fmt.Sprintf("chan[%d]", h),
			Kind:  KindChannelize,
			Stage: 0, Shard: h,
			Cycles:   chanCycles,
			MemWords: int64(2*p.K + 2*nch),
			OutWords: int64(2 * nch),
		})
	}

	f := p.F()
	rows := m + 1
	rowIDs := make([]int, rows)
	for a := 0; a < rows; a++ {
		rowCh := rowResidues(p.K, m, a)
		id := len(g.Tasks)
		rowIDs[a] = id
		g.Tasks = append(g.Tasks, Task{
			ID:    id,
			Name:  fmt.Sprintf("row[a=%+d]", a),
			Kind:  KindProduct,
			Stage: 1, Shard: a,
			// One complex MAC per cell per hop, plus the row's single
			// normalisation pass.
			Cycles:   montium.MACKernelCycles(int64(f)*int64(np)) + montium.AlignCycles(int64(f)),
			MemWords: int64(2*rowCh) + 4*int64(f),
			OutWords: int64(2 * f),
		})
		for h := 0; h < np; h++ {
			g.Edges = append(g.Edges, Edge{From: h, To: id, Words: int64(2 * rowCh)})
		}
	}

	reduce := len(g.Tasks)
	g.Tasks = append(g.Tasks, Task{
		ID:    reduce,
		Name:  "reduce",
		Kind:  KindReduce,
		Stage: 2, Shard: 0,
		// Hermitian mirroring plus assembly: one pass over the full
		// (2M-1)² surface. The assembled surface streams out to host
		// memory row by row, so only one row plus its mirror are ever
		// resident.
		Cycles:   montium.AlignCycles(int64(p.P()) * int64(f)),
		MemWords: 4 * int64(f),
	})
	for _, id := range rowIDs {
		g.Edges = append(g.Edges, Edge{From: id, To: reduce, Words: int64(2 * f)})
	}
	return g
}

// sscaMaxChunks bounds the channelizer stage's task count: the SSCA
// slides one sample per hop, so its N channelizer steps are grouped into
// at most this many chunk tasks to keep the DAG schedulable.
const sscaMaxChunks = 64

// buildSSCA builds the SSCA DAG over an N-sample strip: the N sliding
// channelizer steps grouped into chunks, one strip task per channel the
// grid addresses, one reduce.
func buildSSCA(p scf.Params, n int) *Graph {
	m := p.M - 1
	g := &Graph{Name: "ssca", WindowSamples: n + p.K - 1}

	chunks := sscaMaxChunks
	if n < chunks {
		chunks = n
	}
	// Channels the grid addresses: residues f+a in [-2m, 2m] mod K.
	needed := make([]int, 0, 4*m+1)
	seen := make([]bool, p.K)
	for v := -2 * m; v <= 2*m; v++ {
		if k := fft.BinIndex(p.K, v); !seen[k] {
			seen[k] = true
			needed = append(needed, k)
		}
	}
	nch := len(needed)

	chunkHops := make([]int, chunks)
	for i := range chunkHops {
		chunkHops[i] = n / chunks
		if i < n%chunks {
			chunkHops[i]++
		}
	}
	perHop := montium.FFTKernelCycles(p.K) +
		montium.ReshuffleCycles(int64(p.K)) +
		montium.MACKernelCycles(int64(p.K))
	for i, hops := range chunkHops {
		g.Tasks = append(g.Tasks, Task{
			ID:    len(g.Tasks),
			Name:  fmt.Sprintf("chan[%d]", i),
			Kind:  KindChannelize,
			Stage: 0, Shard: i,
			// hops K-point FFTs plus the hop's one new sample read each.
			Cycles:   int64(hops)*perHop + montium.ReadDataCycles(int64(hops)),
			MemWords: int64(2*p.K) + int64(2*nch*hops),
			OutWords: int64(2 * nch * hops),
		})
	}

	// Cells each strip feeds: cell (f, a) reads channel (f+a) mod K.
	cellsOf := make(map[int]int, nch)
	for a := -m; a <= m; a++ {
		for f := -m; f <= m; f++ {
			cellsOf[fft.BinIndex(p.K, f+a)]++
		}
	}

	stripCycles := montium.MACKernelCycles(int64(n)) + // conjugate product
		montium.FFTKernelCycles(n) +
		montium.ReshuffleCycles(int64(n)) +
		montium.MACKernelCycles(int64(n)) // derotation
	stripIDs := make([]int, 0, nch)
	for si, k := range needed {
		id := len(g.Tasks)
		stripIDs = append(stripIDs, id)
		g.Tasks = append(g.Tasks, Task{
			ID:    id,
			Name:  fmt.Sprintf("strip[k=%d]", k),
			Kind:  KindStrip,
			Stage: 1, Shard: si,
			Cycles:   stripCycles,
			MemWords: 4 * int64(n),
			OutWords: int64(2 * cellsOf[k]),
		})
		for c, hops := range chunkHops {
			g.Edges = append(g.Edges, Edge{From: c, To: id, Words: int64(2 * hops)})
		}
	}

	reduce := len(g.Tasks)
	g.Tasks = append(g.Tasks, Task{
		ID:    reduce,
		Name:  "reduce",
		Kind:  KindReduce,
		Stage: 2, Shard: 0,
		Cycles: montium.AlignCycles(int64(p.P()) * int64(p.F())),
		// As in the hopped pipelines, the surface streams out row by
		// row rather than residing whole.
		MemWords: 4 * int64(p.F()),
	})
	for si, id := range stripIDs {
		g.Edges = append(g.Edges, Edge{From: id, To: reduce, Words: int64(2 * cellsOf[needed[si]])})
	}
	return g
}

// distinctResidues counts the distinct residues of [lo, hi] mod k.
func distinctResidues(k, lo, hi int) int {
	if hi-lo+1 >= k {
		return k
	}
	return hi - lo + 1
}

// rowResidues counts the distinct channels row a addresses: the residues
// of {f+a, f-a : f in [-m, m]} mod k.
func rowResidues(k, m, a int) int {
	seen := make([]bool, k)
	n := 0
	for f := -m; f <= m; f++ {
		for _, v := range [2]int{f + a, f - a} {
			if i := fft.BinIndex(k, v); !seen[i] {
				seen[i] = true
				n++
			}
		}
	}
	return n
}

// pow2Floor is fft.Pow2Floor, aliased for the package's call sites.
func pow2Floor(n int) int { return fft.Pow2Floor(n) }
