package tile

import (
	"testing"

	"tiledcfd/internal/montium"
	"tiledcfd/internal/scf"
)

// paperParams is the K=256/M=64 geometry every acceptance figure uses.
var paperParams = scf.Params{K: 256, M: 64}

func buildPaperGraph(t *testing.T, estimator string, n int) *Graph {
	t.Helper()
	g, err := BuildGraph(estimator, paperParams, n)
	if err != nil {
		t.Fatalf("BuildGraph(%s): %v", estimator, err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("graph %s invalid: %v", estimator, err)
	}
	return g
}

func TestBuildGraphShapes(t *testing.T) {
	cases := []struct {
		estimator string
		n         int
		stages    int
	}{
		{"fam", 2048, 3},
		{"fam-q15", 2048, 3},
		{"direct", 2048, 3},
		{"ssca", 1279, 3},
		{"ssca-q15", 1279, 3},
	}
	for _, c := range cases {
		g := buildPaperGraph(t, c.estimator, c.n)
		if got := g.Stages(); got != c.stages {
			t.Errorf("%s: %d stages, want %d", c.estimator, got, c.stages)
		}
		if g.WindowSamples <= 0 || g.WindowSamples > c.n {
			t.Errorf("%s: window %d samples outside (0, %d]", c.estimator, g.WindowSamples, c.n)
		}
		if g.TotalCycles() <= 0 {
			t.Errorf("%s: non-positive total cycles", c.estimator)
		}
		// Exactly one reduce task, and it is last.
		last := g.Tasks[len(g.Tasks)-1]
		if last.Kind != KindReduce {
			t.Errorf("%s: last task %s is %v, want reduce", c.estimator, last.Name, last.Kind)
		}
	}
}

// TestBuildGraphHonoursHop: an explicit Params.Hop must change the
// modeled pipeline exactly as it changes the estimators — including the
// Hop=K case the defaults sentinel used to swallow.
func TestBuildGraphHonoursHop(t *testing.T) {
	// FAM with explicit non-overlapping Hop=K: 2048 samples afford
	// 8 whole hops, window = K + 7K = 2048.
	p := paperParams
	p.Hop = 256
	g, err := BuildGraph("fam", p, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if g.WindowSamples != 2048 {
		t.Errorf("fam Hop=K: window %d samples, want 2048", g.WindowSamples)
	}
	// Default hop (K/4): pow2floor(29) = 16 hops, window 1216.
	gDef, err := BuildGraph("fam", paperParams, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if gDef.WindowSamples != 1216 {
		t.Errorf("fam default hop: window %d samples, want 1216", gDef.WindowSamples)
	}
	// Direct with overlapping Hop=K/2: (2048-256)/128+1 = 15 blocks, and
	// the non-identity phase reference costs a downconversion pass the
	// non-overlapping default does not pay.
	p.Hop = 128
	gOver, err := BuildGraph("direct", p, 2048)
	if err != nil {
		t.Fatal(err)
	}
	gPlain, err := BuildGraph("direct", paperParams, 2048)
	if err != nil {
		t.Fatal(err)
	}
	chans := func(g *Graph) (n int, cycles int64) {
		for _, task := range g.Tasks {
			if task.Kind == KindChannelize {
				n++
				cycles = task.Cycles
			}
		}
		return
	}
	nOver, cyOver := chans(gOver)
	nPlain, cyPlain := chans(gPlain)
	if nOver != 15 || nPlain != 8 {
		t.Errorf("direct channelizer tasks: Hop=128 %d (want 15), default %d (want 8)", nOver, nPlain)
	}
	if cyOver <= cyPlain {
		t.Errorf("overlapping direct hop task %d cycles not above non-overlapping %d (phase reference unpaid)",
			cyOver, cyPlain)
	}
	// SSCA rejects an explicit hop, as the estimators do.
	p.Hop = 4
	if _, err := BuildGraph("ssca", p, 2048); err == nil {
		t.Error("ssca with Hop accepted")
	}
	p.Hop = -1
	if _, err := BuildGraph("fam", p, 2048); err == nil {
		t.Error("negative Hop accepted")
	}
}

func TestBuildGraphErrors(t *testing.T) {
	if _, err := BuildGraph("nope", paperParams, 2048); err == nil {
		t.Error("unknown estimator accepted")
	}
	if _, err := BuildGraph("fam", paperParams, 100); err == nil {
		t.Error("FAM with 100 samples accepted")
	}
	if _, err := BuildGraph("ssca", paperParams, 300); err == nil {
		t.Error("SSCA with 300 samples accepted")
	}
	if _, err := BuildGraph("fam", scf.Params{K: 100}, 2048); err == nil {
		t.Error("non-power-of-two K accepted")
	}
}

// TestMappingThroughputOrdering is the acceptance criterion: on the
// paper geometry, the pipelined and sharded mappings each predict
// strictly higher sustained throughput than the single-tile baseline.
func TestMappingThroughputOrdering(t *testing.T) {
	for _, estimator := range []string{"fam", "ssca", "direct"} {
		g := buildPaperGraph(t, estimator, 2048)
		single, err := NewSchedule(g, Fabric{Tiles: 4}, StrategySingle)
		if err != nil {
			t.Fatalf("%s single: %v", estimator, err)
		}
		base := single.SustainedSamplesPerSec()
		if base <= 0 {
			t.Fatalf("%s single: non-positive throughput", estimator)
		}
		for _, strategy := range []string{StrategyPipelined, StrategySharded} {
			s, err := NewSchedule(g, Fabric{Tiles: 4}, strategy)
			if err != nil {
				t.Fatalf("%s %s: %v", estimator, strategy, err)
			}
			if got := s.SustainedSamplesPerSec(); got <= base {
				t.Errorf("%s %s: sustained %.0f samples/s not above single-tile %.0f",
					estimator, strategy, got, base)
			}
			if s.NoCWords == 0 {
				t.Errorf("%s %s: multi-tile mapping moved no NoC words", estimator, strategy)
			}
		}
		if single.NoCWords != 0 {
			t.Errorf("%s single: %d NoC words on one tile", estimator, single.NoCWords)
		}
	}
}

// TestShardedScalesWithTiles: more tiles must not lower the sharded
// mapping's predicted throughput, and 4 tiles must beat 1.
func TestShardedScalesWithTiles(t *testing.T) {
	g := buildPaperGraph(t, "fam", 2048)
	prev := 0.0
	for _, tiles := range []int{1, 2, 4} {
		s, err := NewSchedule(g, Fabric{Tiles: tiles}, StrategySharded)
		if err != nil {
			t.Fatalf("tiles=%d: %v", tiles, err)
		}
		got := s.SustainedSamplesPerSec()
		if got < prev {
			t.Errorf("tiles=%d: sustained %.0f below tiles/2's %.0f", tiles, got, prev)
		}
		prev = got
	}
	one, _ := NewSchedule(g, Fabric{Tiles: 1}, StrategySharded)
	four, _ := NewSchedule(g, Fabric{Tiles: 4}, StrategySharded)
	if four.SustainedSamplesPerSec() <= one.SustainedSamplesPerSec() {
		t.Errorf("sharded 4 tiles (%.0f) not above 1 tile (%.0f)",
			four.SustainedSamplesPerSec(), one.SustainedSamplesPerSec())
	}
}

func TestScheduleAccounting(t *testing.T) {
	g := buildPaperGraph(t, "fam", 2048)
	s, err := NewSchedule(g, Fabric{Tiles: 4}, StrategySharded)
	if err != nil {
		t.Fatal(err)
	}
	// Compute conservation across tiles.
	var compute int64
	for _, u := range s.PerTile {
		compute += u.ComputeCycles
	}
	if compute != g.TotalCycles() {
		t.Errorf("per-tile compute %d != graph total %d", compute, g.TotalCycles())
	}
	// Send and receive words balance.
	var sent, recvd int64
	for _, u := range s.PerTile {
		sent += u.SendWords
		recvd += u.RecvWords
	}
	if sent != recvd || sent != s.NoCWords {
		t.Errorf("send %d / recv %d / NoC %d words out of balance", sent, recvd, s.NoCWords)
	}
	// Every transfer crosses tiles and was costed.
	for _, tr := range s.Transfers {
		if tr.FromTile == tr.ToTile {
			t.Errorf("transfer of task %d stays on tile %d", tr.From, tr.FromTile)
		}
		if tr.Cycles <= 0 {
			t.Errorf("transfer of task %d (%d words) costed %d cycles", tr.From, tr.Words, tr.Cycles)
		}
	}
	// Makespan bounds every span and the bottleneck.
	for _, sp := range s.Spans {
		if sp.End > s.Makespan {
			t.Errorf("span of task %d ends at %d beyond makespan %d", sp.Task, sp.End, s.Makespan)
		}
	}
	if s.BottleneckCycles > s.Makespan {
		t.Errorf("bottleneck %d exceeds makespan %d", s.BottleneckCycles, s.Makespan)
	}
	// Utilization is a proper fraction and PerTileStats mirrors PerTile.
	for tl, st := range s.PerTileStats() {
		if u := s.Utilization(tl); u < 0 || u > 1 {
			t.Errorf("tile %d utilization %v outside [0,1]", tl, u)
		}
		if st.Compute != s.PerTile[tl].ComputeCycles || st.Transfer != s.PerTile[tl].IOCycles {
			t.Errorf("tile %d PerTileStats %+v mismatches TileUse %+v", tl, st, s.PerTile[tl])
		}
	}
}

func TestValidateCatchesOversubscription(t *testing.T) {
	g := buildPaperGraph(t, "fam", 2048)
	s, err := NewSchedule(g, Fabric{Tiles: 2}, StrategyPipelined)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	// Tamper: force two spans on one tile to overlap.
	tile0 := -1
	for i := range s.Spans {
		if s.Spans[i].Tile == s.Spans[0].Tile && i > 0 {
			tile0 = i
			break
		}
	}
	if tile0 < 0 {
		t.Skip("no two tasks share a tile")
	}
	s.Spans[tile0].Start = s.Spans[0].Start
	if err := s.Validate(); err == nil {
		t.Error("overlapping spans passed validation")
	}
}

func TestValidateCatchesMissingTransfer(t *testing.T) {
	g := buildPaperGraph(t, "fam", 2048)
	s, err := NewSchedule(g, Fabric{Tiles: 4}, StrategySharded)
	if err != nil {
		t.Fatal(err)
	}
	s.Transfers = s.Transfers[:len(s.Transfers)-1]
	if err := s.Validate(); err == nil {
		t.Error("dropped NoC transfer passed validation")
	}
}

func TestMemoryFeasibility(t *testing.T) {
	g := buildPaperGraph(t, "fam", 2048)
	ok, err := NewSchedule(g, Fabric{Tiles: 4}, StrategySharded)
	if err != nil {
		t.Fatal(err)
	}
	if !ok.MemFeasible() {
		t.Error("paper fabric reported infeasible for FAM")
	}
	tiny, err := NewSchedule(g, Fabric{Tiles: 4, LocalMemWords: 16}, StrategySharded)
	if err != nil {
		t.Fatal(err)
	}
	if tiny.MemFeasible() {
		t.Error("16-word tiles reported feasible")
	}
}

func TestAssignErrors(t *testing.T) {
	g := buildPaperGraph(t, "fam", 2048)
	if _, err := Assign(g, "zigzag", 4); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := Assign(g, StrategySingle, 0); err == nil {
		t.Error("0 tiles accepted")
	}
	if len(Strategies()) != 3 {
		t.Errorf("Strategies() = %v, want 3 entries", Strategies())
	}
}

func TestFabricDefaultsAndValidation(t *testing.T) {
	f := Fabric{}.WithDefaults()
	if f.Tiles != 4 || f.ClockMHz != 100 || f.LocalMemWords != 10*montium.MemWords ||
		f.LinkLatency != 4 || f.LinkWordsPerCycle != 1 {
		t.Errorf("defaults %+v not the paper platform", f)
	}
	if err := f.Validate(); err != nil {
		t.Errorf("default fabric invalid: %v", err)
	}
	for _, bad := range []Fabric{
		{Tiles: -1, ClockMHz: 100, LocalMemWords: 1, LinkWordsPerCycle: 1},
		{Tiles: 1, ClockMHz: -5, LocalMemWords: 1, LinkWordsPerCycle: 1},
		{Tiles: 1, ClockMHz: 100, LocalMemWords: -1, LinkWordsPerCycle: 1},
		{Tiles: 1, ClockMHz: 100, LocalMemWords: 1, LinkLatency: -1, LinkWordsPerCycle: 1},
		{Tiles: 1, ClockMHz: 100, LocalMemWords: 1, LinkWordsPerCycle: -2},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("fabric %+v passed validation", bad)
		}
	}
}

func TestTransferCycles(t *testing.T) {
	cases := []struct {
		words   int64
		latency int
		bw      float64
		want    int64
	}{
		{0, 4, 1, 0},
		{1, 4, 1, 5},
		{100, 4, 1, 104},
		{100, 0, 4, 25},
		{101, 0, 4, 26},
		{3, 2, 0, 5}, // non-positive bandwidth defaults to 1 word/cycle
	}
	for _, c := range cases {
		if got := montium.TransferCycles(c.words, c.latency, c.bw); got != c.want {
			t.Errorf("TransferCycles(%d, %d, %v) = %d, want %d", c.words, c.latency, c.bw, got, c.want)
		}
	}
}

func TestLatencyAndThroughputFigures(t *testing.T) {
	g := buildPaperGraph(t, "fam", 2048)
	s, err := NewSchedule(g, Fabric{}, StrategySingle)
	if err != nil {
		t.Fatal(err)
	}
	// Single tile: makespan is the serial total, bottleneck equals it.
	if s.Makespan != g.TotalCycles() {
		t.Errorf("single-tile makespan %d != total cycles %d", s.Makespan, g.TotalCycles())
	}
	if s.BottleneckCycles != s.Makespan {
		t.Errorf("single-tile bottleneck %d != makespan %d", s.BottleneckCycles, s.Makespan)
	}
	wantMicros := float64(s.Makespan) / 100
	if got := s.LatencyMicros(); got != wantMicros {
		t.Errorf("latency %v µs, want %v", got, wantMicros)
	}
	if s.SustainedSamplesPerSec() != s.OneShotSamplesPerSec() {
		t.Errorf("single tile sustained %v != one-shot %v",
			s.SustainedSamplesPerSec(), s.OneShotSamplesPerSec())
	}
}

func TestPow2Floor(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 2: 2, 3: 2, 16: 16, 29: 16, 1023: 512}
	for n, want := range cases {
		if got := pow2Floor(n); got != want {
			t.Errorf("pow2Floor(%d) = %d, want %d", n, got, want)
		}
	}
}
