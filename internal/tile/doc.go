// Package tile models the mapping of the spectral-correlation pipelines
// onto a fabric of Montium tiles connected by a network-on-chip — the
// paper's tiled-SoC claim generalised from the single hand-mapped DSCF
// kernel to the whole estimator family.
//
// The subsystem has three layers:
//
//   - BuildGraph partitions an estimator pipeline (FAM, SSCA or the
//     direct DSCF) into a task DAG: channelizer FFT hops, per-row
//     conjugate-product accumulation (FAM/direct) or per-channel strip
//     FFTs (SSCA), and a final reduction. Task cycle costs come from the
//     internal/montium Table-1 kernel models, edge weights are the
//     16-bit words that must move between producer and consumer.
//
//   - Fabric describes the modeled platform: tile count, clock, local
//     memory capacity, and NoC link latency/bandwidth.
//
//   - NewSchedule maps the DAG onto the fabric with a named strategy
//     (Strategies lists them: single-tile baseline, pipelined stages,
//     data-parallel sharding) and list-schedules it, predicting the
//     end-to-end latency, per-tile utilization and NoC traffic of one
//     window, plus the sustained throughput of the window pipelined in
//     steady state.
//
// Schedules are validated, not trusted: Schedule.Validate re-checks that
// no tile runs two tasks at once, that every cross-tile edge was charged
// a NoC transfer, and that scheduled compute conserves the graph total.
// cmd/cfdmap sweeps the design space and prints the paper-style
// tiles-vs-throughput table; tiledcfd.MapEstimate is the public entry
// point.
package tile
