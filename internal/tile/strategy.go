package tile

import "fmt"

// The mapping strategies NewSchedule accepts.
const (
	// StrategySingle places every task on tile 0 — the paper's
	// one-kernel-per-tile baseline and the reference every speedup is
	// measured against.
	StrategySingle = "single"
	// StrategyPipelined places each pipeline stage on its own tile
	// (round-robin when there are fewer tiles than stages): channelizer
	// hops stream into the product/strip tile(s), which stream into the
	// reducer. Throughput is set by the heaviest stage; tiles beyond the
	// stage count stay idle, which is exactly the plateau the sweep
	// shows.
	StrategyPipelined = "pipelined"
	// StrategySharded distributes each stage's shards (hops, rows,
	// strips) round-robin across all tiles — data parallelism. Scales
	// with tile count until the NoC, not compute, is the bottleneck.
	StrategySharded = "sharded"
)

// Strategies lists the mapping strategies in report order.
func Strategies() []string {
	return []string{StrategySingle, StrategyPipelined, StrategySharded}
}

// Assign maps every task of g onto one of tiles tiles with the named
// strategy, returning the task-ID-indexed tile assignment.
func Assign(g *Graph, strategy string, tiles int) ([]int, error) {
	if tiles < 1 {
		return nil, fmt.Errorf("tile: assignment needs at least 1 tile, got %d", tiles)
	}
	asg := make([]int, len(g.Tasks))
	switch strategy {
	case StrategySingle:
		// All zeroes already.
	case StrategyPipelined:
		for i, t := range g.Tasks {
			asg[i] = t.Stage % tiles
		}
	case StrategySharded:
		for i, t := range g.Tasks {
			asg[i] = t.Shard % tiles
		}
	default:
		return nil, fmt.Errorf("tile: unknown mapping strategy %q (want %s, %s or %s)",
			strategy, StrategySingle, StrategyPipelined, StrategySharded)
	}
	return asg, nil
}
