package tile

import (
	"fmt"

	"tiledcfd/internal/montium"
)

// Fabric describes the modeled tiled platform a schedule runs on. The
// zero value takes the paper's configuration via WithDefaults.
type Fabric struct {
	// Tiles is the number of Montium tiles (the paper's Q; default 4).
	Tiles int
	// ClockMHz is the tile clock (default 100, the paper's figure).
	ClockMHz float64
	// LocalMemWords is each tile's local memory capacity in 16-bit words
	// (default 10×1024, the Montium's ten 1K-word memories).
	LocalMemWords int
	// LinkLatency is the fixed NoC per-transfer latency in cycles. 0
	// takes the default 4 (router traversal plus link setup); a negative
	// value selects a true zero-latency link, since the zero value must
	// keep meaning "the paper's platform".
	LinkLatency int
	// LinkWordsPerCycle is the NoC link bandwidth in 16-bit words per
	// cycle (default 1 — one word wide, the paper's factor-T-slower data
	// exchange).
	LinkWordsPerCycle float64
}

// WithDefaults returns a copy of f with zero fields replaced by the
// paper's platform: 4 tiles at 100 MHz, 10K words of local memory,
// 4-cycle link latency, one word per cycle.
func (f Fabric) WithDefaults() Fabric {
	if f.Tiles == 0 {
		f.Tiles = 4
	}
	if f.ClockMHz == 0 {
		f.ClockMHz = 100
	}
	if f.LocalMemWords == 0 {
		f.LocalMemWords = 10 * montium.MemWords
	}
	if f.LinkLatency == 0 {
		f.LinkLatency = 4
	} else if f.LinkLatency < 0 {
		f.LinkLatency = 0
	}
	if f.LinkWordsPerCycle == 0 {
		f.LinkWordsPerCycle = 1
	}
	return f
}

// Validate checks the fabric for consistency.
func (f Fabric) Validate() error {
	if f.Tiles < 1 {
		return fmt.Errorf("tile: fabric needs at least 1 tile, got %d", f.Tiles)
	}
	if f.ClockMHz <= 0 {
		return fmt.Errorf("tile: fabric clock %v MHz must be positive", f.ClockMHz)
	}
	if f.LocalMemWords < 1 {
		return fmt.Errorf("tile: fabric local memory %d words must be positive", f.LocalMemWords)
	}
	if f.LinkLatency < 0 {
		return fmt.Errorf("tile: fabric link latency %d cycles must be non-negative", f.LinkLatency)
	}
	if f.LinkWordsPerCycle <= 0 {
		return fmt.Errorf("tile: fabric link bandwidth %v words/cycle must be positive", f.LinkWordsPerCycle)
	}
	return nil
}

// TransferCycles returns the modeled cost of one cross-tile transfer of
// words 16-bit words (montium.TransferCycles with this fabric's link
// parameters).
func (f Fabric) TransferCycles(words int64) int64 {
	return montium.TransferCycles(words, f.LinkLatency, f.LinkWordsPerCycle)
}
