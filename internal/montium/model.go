package montium

import "math"

// Kernel cycle models: closed-form Table-1-style cycle costs of the
// Montium kernels, used to charge the software fixed-point backends
// (fam-q15/ssca-q15) for the work the tiles would perform. The measured
// simulation (Core, Table1) stays the ground truth for the direct DSCF;
// these formulas reproduce its per-kernel rows so estimators that never
// touch the cycle-true simulator can still report comparable costs.

// FFTKernelCycles returns the Montium FFT kernel's cycle count for an
// n-point transform: one butterfly per cycle plus two pipeline fill/drain
// cycles per stage, log2(n)·(n/2 + 2). For n = 256 this is 8·(128+2) =
// 1040, the paper's Table 1 FFT row.
func FFTKernelCycles(n int) int64 {
	stages := 0
	for v := n; v > 1; v >>= 1 {
		stages++
	}
	return int64(stages) * int64(n/2+2)
}

// MACKernelCycles returns the cycle cost of n complex multiply-accumulates:
// the complex ALU retires one per clock, so it is n. It is the paper's
// "multiply accumulate" Table 1 row for the folded DSCF loop.
func MACKernelCycles(n int64) int64 { return n }

// ReadDataCycles returns the cycle cost of streaming n complex samples
// into a tile's memories: the paper's Table 1 measures 381 cycles for 256
// samples, ~3 cycles per 2 samples (16-bit words move one per cycle and
// the AGU overlaps the odd word). Modeled as ceil(3n/2).
func ReadDataCycles(n int64) int64 { return (3*n + 1) / 2 }

// ReshuffleCycles returns the cycle cost of the memory reshuffling pass
// that bit-reverses (or re-banks) an n-point block: one move per value,
// the paper's 256-cycle Table 1 row for K = 256.
func ReshuffleCycles(n int64) int64 { return n }

// AlignCycles returns the cycle cost of a block-floating-point exponent
// alignment pass touching n values: one read-shift-write per value, the
// initialisation-style bookkeeping the fixed backends add on top of the
// paper's kernels.
func AlignCycles(n int64) int64 { return n }

// TransferCycles returns the cycle cost of moving words 16-bit words
// across one NoC link: the link's fixed latency plus the serialisation
// time at wordsPerCycle — the paper's "data exchange is a factor T
// slower than computation" made explicit. Zero words cost nothing;
// non-positive bandwidth defaults to one word per cycle.
func TransferCycles(words int64, latencyCycles int, wordsPerCycle float64) int64 {
	if words <= 0 {
		return 0
	}
	if wordsPerCycle <= 0 {
		wordsPerCycle = 1
	}
	ser := int64(math.Ceil(float64(words) / wordsPerCycle))
	if ser < 1 {
		ser = 1
	}
	return int64(latencyCycles) + ser
}
