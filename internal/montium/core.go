package montium

import (
	"fmt"
	"sort"
	"strings"

	"tiledcfd/internal/trace"
)

// Ledger section names, matching the rows of the paper's Table 1, plus
// the energy-detector stage of section 2 (not part of the Table 1 budget).
const (
	SectionMAC       = "multiply accumulate"
	SectionReadData  = "read data"
	SectionFFT       = "FFT"
	SectionReshuffle = "reshuffling"
	SectionInit      = "initialisation"
	SectionEnergy    = "energy detector"
)

// Core is one Montium processing tile: ten parallel memories, the complex
// ALU's operation counters, and a cycle ledger keyed by kernel section.
type Core struct {
	// ID identifies the tile (the q of the folded mapping).
	ID int
	// Mem holds M01..M10 at indices 0..9.
	Mem [NumMemories]*Memory

	cycles  int64
	ledger  map[string]int64
	section string

	// MACs, Butterflies and Moves count the ALU operations retired.
	MACs, Butterflies, Moves int64

	cfg *CFDConfig
	// resultInA records which ping-pong buffer (M09 = A, M10 = B) holds
	// the latest FFT result; shuffled records whether the reshuffled
	// spectrum is valid in the opposite buffer; samplesValid records
	// whether buffer A still holds raw time samples (before the FFT
	// overwrites them).
	resultInA    bool
	shuffled     bool
	samplesValid bool

	tracer       *trace.Recorder
	traceName    string
	sectionStart int64
}

// NewCore builds an idle core with zeroed memories.
func NewCore(id int) *Core {
	c := &Core{ID: id, ledger: make(map[string]int64)}
	for i := range c.Mem {
		c.Mem[i] = &Memory{Name: fmt.Sprintf("M%02d", i+1)}
	}
	return c
}

// BeginSection directs subsequent cycles into the named ledger section,
// closing the previous section's trace span if a tracer is attached.
func (c *Core) BeginSection(name string) {
	if name == c.section {
		return
	}
	c.closeSpan()
	c.section = name
}

// SetTracer attaches a span recorder under the given source name; pass
// nil to detach. Call FlushTrace after the last kernel to close the open
// span.
func (c *Core) SetTracer(r *trace.Recorder, name string) {
	c.closeSpan()
	c.tracer = r
	c.traceName = name
	c.sectionStart = c.cycles
}

// FlushTrace closes the currently open trace span.
func (c *Core) FlushTrace() { c.closeSpan() }

// closeSpan emits the span covering [sectionStart, cycles) of the current
// section, if any.
func (c *Core) closeSpan() {
	if c.tracer != nil && c.section != "" && c.cycles > c.sectionStart {
		c.tracer.Record(trace.Span{
			Source:  c.traceName,
			Section: c.section,
			Start:   c.sectionStart,
			Cycles:  c.cycles - c.sectionStart,
		})
	}
	c.sectionStart = c.cycles
}

// tick advances the clock by n cycles within the current section.
func (c *Core) tick(n int64) {
	c.cycles += n
	if c.section != "" {
		c.ledger[c.section] += n
	}
}

// Cycles returns the total elapsed clock cycles.
func (c *Core) Cycles() int64 { return c.cycles }

// CyclesIn returns the cycles attributed to a ledger section.
func (c *Core) CyclesIn(section string) int64 { return c.ledger[section] }

// Sections lists the ledger sections in deterministic (sorted) order.
func (c *Core) Sections() []string {
	out := make([]string, 0, len(c.ledger))
	for k := range c.ledger {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ResetCycles clears the clock and ledger but keeps memory contents and
// configuration; used between integration steps when only per-step counts
// are wanted.
func (c *Core) ResetCycles() {
	c.cycles = 0
	c.ledger = make(map[string]int64)
	c.MACs, c.Butterflies, c.Moves = 0, 0, 0
}

// MemoryTraffic sums reads and writes over all ten memories.
func (c *Core) MemoryTraffic() (reads, writes int64) {
	for _, m := range c.Mem {
		reads += m.Reads
		writes += m.Writes
	}
	return reads, writes
}

// String summarises the core state for diagnostics.
func (c *Core) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Montium core %d: %d cycles", c.ID, c.cycles)
	for _, s := range c.Sections() {
		fmt.Fprintf(&b, "; %s=%d", s, c.ledger[s])
	}
	return b.String()
}
