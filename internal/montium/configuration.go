package montium

import (
	"fmt"
	"strings"
)

// The Montium is a *reconfigurable* core: before an application runs, its
// sequencer tables, AGU patterns and interconnect settings are loaded by
// the control/configuration/communication block (paper Figure 10). The
// paper does not budget this one-time cost, because the CFD configuration
// is loaded once and the core then streams blocks indefinitely; this file
// models it explicitly so the trade-off against per-block work is
// quantified (an extension, clearly separated from the Table 1 numbers).
//
// The model: each kernel contributes sequencer words (one per distinct
// micro-instruction of its inner loops), AGU descriptors (one per memory
// access pattern) and interconnect settings (one per routing change). One
// configuration word loads per clock cycle over the same interface that
// streams samples, which is how the cited Montium literature describes
// configuration sizes of a few hundred words loading in microseconds.

// KernelConfig sizes one kernel's configuration.
type KernelConfig struct {
	// Name identifies the kernel.
	Name string
	// SequencerWords counts the sequencer instruction words.
	SequencerWords int
	// AGUDescriptors counts the address-generator descriptors (two
	// words each).
	AGUDescriptors int
	// InterconnectWords counts the crossbar configuration words.
	InterconnectWords int
}

// Words returns the total configuration words of the kernel (each AGU
// descriptor occupies two words: base/stride and count/modulo).
func (k KernelConfig) Words() int {
	return k.SequencerWords + 2*k.AGUDescriptors + k.InterconnectWords
}

// ConfigurationPlan is the full CFD application configuration of one core.
type ConfigurationPlan struct {
	// Kernels lists the kernel configurations in load order.
	Kernels []KernelConfig
}

// CFDConfigurationPlan sizes the four CFD kernels for FFT size k. The
// sizes follow the kernel structures implemented in this package:
//
//   - FFT: one micro-instruction per stage loop plus stage setup — the
//     sequencer iterates, so words grow with log2(K), not K;
//   - reshuffle: a single reversed-copy loop;
//   - init: a single shift-in loop;
//   - MAC loop: the read-data/shift step plus the T-iteration MAC loop.
func CFDConfigurationPlan(k int) (ConfigurationPlan, error) {
	if k < 4 || k&(k-1) != 0 {
		return ConfigurationPlan{}, fmt.Errorf("montium: configuration for K=%d (need power of two >= 4)", k)
	}
	stages := 0
	for v := k; v > 1; v >>= 1 {
		stages++
	}
	return ConfigurationPlan{Kernels: []KernelConfig{
		{Name: "FFT", SequencerWords: 4 * stages, AGUDescriptors: 3 * stages, InterconnectWords: stages},
		{Name: "reshuffling", SequencerWords: 4, AGUDescriptors: 2, InterconnectWords: 1},
		{Name: "initialisation", SequencerWords: 4, AGUDescriptors: 4, InterconnectWords: 2},
		{Name: "multiply accumulate", SequencerWords: 12, AGUDescriptors: 6, InterconnectWords: 3},
	}}, nil
}

// TotalWords returns the summed configuration size.
func (p ConfigurationPlan) TotalWords() int {
	sum := 0
	for _, k := range p.Kernels {
		sum += k.Words()
	}
	return sum
}

// LoadCycles returns the one-time configuration load time in cycles at
// one word per cycle.
func (p ConfigurationPlan) LoadCycles() int64 { return int64(p.TotalWords()) }

// AmortisationBlocks returns after how many integration steps the
// one-time configuration cost falls below the given fraction of the
// cumulative compute time (e.g. 0.01 for 1%).
func (p ConfigurationPlan) AmortisationBlocks(cyclesPerBlock int64, fraction float64) (int, error) {
	if cyclesPerBlock < 1 {
		return 0, fmt.Errorf("montium: cyclesPerBlock %d must be >= 1", cyclesPerBlock)
	}
	if fraction <= 0 || fraction >= 1 {
		return 0, fmt.Errorf("montium: fraction %v outside (0,1)", fraction)
	}
	// load <= fraction · n · perBlock  =>  n >= load / (fraction·perBlock)
	n := float64(p.LoadCycles()) / (fraction * float64(cyclesPerBlock))
	blocks := int(n)
	if float64(blocks) < n {
		blocks++
	}
	if blocks < 1 {
		blocks = 1
	}
	return blocks, nil
}

// String renders the plan.
func (p ConfigurationPlan) String() string {
	var b strings.Builder
	b.WriteString("configuration plan:\n")
	for _, k := range p.Kernels {
		fmt.Fprintf(&b, "  %-22s %4d words (%d seq, %d AGU, %d interconnect)\n",
			k.Name, k.Words(), k.SequencerWords, k.AGUDescriptors, k.InterconnectWords)
	}
	fmt.Fprintf(&b, "  %-22s %4d words (%d cycles to load)\n", "total", p.TotalWords(), p.LoadCycles())
	return b.String()
}
