package montium

import (
	"strings"
	"testing"
)

func TestCFDConfigurationPlan(t *testing.T) {
	p, err := CFDConfigurationPlan(256)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Kernels) != 4 {
		t.Fatalf("kernels %d", len(p.Kernels))
	}
	// The plan must stay small relative to one integration step: the
	// reconfigurable-core premise (configuration loads in a few hundred
	// cycles, then streams indefinitely).
	if p.TotalWords() < 50 || p.TotalWords() > 500 {
		t.Fatalf("total configuration %d words, expected a few hundred", p.TotalWords())
	}
	if p.LoadCycles() != int64(p.TotalWords()) {
		t.Fatal("load cycles must equal words at 1 word/cycle")
	}
	// FFT dominates (per-stage tables).
	if p.Kernels[0].Name != "FFT" || p.Kernels[0].Words() < p.Kernels[1].Words() {
		t.Fatalf("FFT should be the largest kernel config: %+v", p.Kernels)
	}
}

func TestConfigurationScalesWithStages(t *testing.T) {
	small, err := CFDConfigurationPlan(64)
	if err != nil {
		t.Fatal(err)
	}
	big, err := CFDConfigurationPlan(1024)
	if err != nil {
		t.Fatal(err)
	}
	if big.TotalWords() <= small.TotalWords() {
		t.Fatalf("configuration should grow with log2(K): %d vs %d", big.TotalWords(), small.TotalWords())
	}
	// But only logarithmically: 1024-point config is far less than 16x
	// the 64-point one.
	if big.TotalWords() > 4*small.TotalWords() {
		t.Fatalf("configuration grows too fast: %d vs %d", big.TotalWords(), small.TotalWords())
	}
}

func TestConfigurationErrors(t *testing.T) {
	if _, err := CFDConfigurationPlan(100); err == nil {
		t.Error("non-pow2 K should fail")
	}
	if _, err := CFDConfigurationPlan(2); err == nil {
		t.Error("tiny K should fail")
	}
}

func TestAmortisationBlocks(t *testing.T) {
	p, err := CFDConfigurationPlan(256)
	if err != nil {
		t.Fatal(err)
	}
	// Against the paper's 13996-cycle block, the configuration amortises
	// below 1% within a handful of blocks.
	n, err := p.AmortisationBlocks(13996, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 || n > 10 {
		t.Fatalf("amortisation %d blocks, expected single digits", n)
	}
	// The bound is tight: at n blocks the fraction is <= 1%, at n-1 it
	// is not (unless n == 1).
	load := float64(p.LoadCycles())
	if load/(float64(n)*13996) > 0.01 {
		t.Fatalf("fraction at %d blocks still above 1%%", n)
	}
	if n > 1 && load/(float64(n-1)*13996) <= 0.01 {
		t.Fatalf("amortisation bound not tight at %d", n)
	}
	if _, err := p.AmortisationBlocks(0, 0.01); err == nil {
		t.Error("zero cycles should fail")
	}
	if _, err := p.AmortisationBlocks(100, 0); err == nil {
		t.Error("zero fraction should fail")
	}
	if _, err := p.AmortisationBlocks(100, 1); err == nil {
		t.Error("fraction 1 should fail")
	}
}

func TestConfigurationString(t *testing.T) {
	p, err := CFDConfigurationPlan(256)
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, frag := range []string{"FFT", "multiply accumulate", "total", "cycles to load"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("rendering missing %q:\n%s", frag, s)
		}
	}
}
