// Package montium models the Montium coarse-grain reconfigurable
// processor core (Heysters 2004, the paper's reference [3]) at the level
// of detail the paper's step-2 analysis uses, and executes the CFD
// application kernels on it so that the cycle counts of Table 1 are
// measured from simulation rather than asserted.
//
// # Modelled micro-architecture (paper Figure 10)
//
//   - ten single-cycle memories M01..M10 of 1024 16-bit words each
//     ("the total memory capacity of the Montium memories M01 to M08
//     equals 8K words of 16 bits"), addressable in parallel, each with an
//     address-generation unit (AGU);
//   - a complex ALU executing one complex multiplication (or one radix-2
//     butterfly, or one complex addition) per clock cycle;
//   - five register files and an interconnection network, abstracted into
//     the kernels' ability to move one operand set per cycle between
//     memories and the ALU;
//   - a sequencer (control/configuration block) represented by the kernel
//     methods, each of which advances the core's cycle ledger exactly as
//     its micro-program schedule dictates.
//
// # CFD mapping (paper Figure 11)
//
// The DSCF accumulators live in M01..M08 (T·F complex values, 8128 words
// for the paper's T=32, F=127 — just inside the 8K budget, the section 4.1
// argument reproduced by experiment E7). The two communication chain
// segments of the folded systolic array live in the low words of M09 and
// M10; the FFT ping-pong buffers and the (reshuffled) spectrum occupy
// their upper words, which also serve the array-end value injections.
//
// # Cycle model (paper section 4.1)
//
//   - multiply-accumulate: 3 cycles (accumulator read, complex MAC,
//     write-back) — simulations in the paper report the same 3 cycles;
//   - read data: 3 cycles per group of T=32 MACs (chain shift, boundary
//     receive and switch update between time steps);
//   - FFT: one butterfly per cycle plus 2 AGU/interconnect reconfiguration
//     cycles per stage: 256-point = 8·(128+2) = 1040 cycles, the number
//     the paper cites from [3];
//   - reshuffling: one move per cycle, 256 cycles;
//   - initialisation: the chains load through their shift path in lockstep
//     with the rest of the array, P = 127 cycles.
//
// Every kernel operates on real Q15 data held in the modelled memories;
// outputs are verified bit-for-bit against internal/fft and internal/scf.
package montium
