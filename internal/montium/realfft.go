package montium

import (
	"fmt"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/fixed"
)

// RunFFTRealInput executes the real-input FFT optimisation on the core:
// since the paper's antenna samples are real (expression 1), the K-point
// spectrum can be computed as a K/2-point complex FFT over even/odd
// packed samples followed by a K/2-cycle untangling pass. For K = 256
// this measures 590 cycles against the complex kernel's 1040 — the
// executed form of the real-FFT ablation (docs/PAPER_MAPPING.md).
//
// Schedule: log2(K/2) stages of (K/4 butterflies + 2 setup cycles), then
// K/2 untangle operations at one per cycle. The even/odd packing is pure
// AGU addressing (interleaved reads in stage 0) and costs nothing; each
// untangle cycle produces bin k and, through the conjugate write port,
// its mirror bin K-k in a parallel memory — the conjugation itself is a
// wire-level operation.
//
// The output lands in the same buffers and scaling (DFT/K) as RunFFT, so
// all downstream kernels work unchanged. Requires freshly loaded samples
// with zero imaginary parts.
func (c *Core) RunFFTRealInput() error {
	if err := c.needConfig(); err != nil {
		return err
	}
	if !c.samplesValid {
		return fmt.Errorf("montium: RunFFTRealInput needs freshly loaded samples")
	}
	cfg := c.cfg
	k := cfg.K
	h := k / 2
	// Validate the real-input premise.
	for j := 0; j < k; j++ {
		v, err := c.memA().ReadComplex(cfg.bufSlot(j))
		if err != nil {
			return err
		}
		if v.Im != 0 {
			return fmt.Errorf("montium: sample %d has non-zero imaginary part; real-input FFT inapplicable", j)
		}
	}
	c.BeginSection(SectionFFT)

	// Half-size complex FFT over packed samples. Stage 0 reads bufA with
	// the composed even/odd + bit-reverse addressing; later stages
	// ping-pong between bufB and bufA (bufA's samples are dead after
	// stage 0).
	halfPlan, err := fft.NewFixedPlan(h)
	if err != nil {
		return err
	}
	rev := halfPlan.BitrevTable()
	srcInA := true // stage 0 conceptually reads A (packed), writes B
	for s := 0; s < halfPlan.Stages(); s++ {
		c.tick(2)
		span := 2 << s
		half := span / 2
		tw := halfPlan.StageTwiddles(s)
		src, dst := c.memA(), c.memB()
		if !srcInA {
			src, dst = dst, src
		}
		for base := 0; base < h; base += span {
			for i := 0; i < half; i++ {
				la, ha := base+i, base+i+half
				var a, b fixed.Complex
				if s == 0 {
					// Packed read: z[j] = (x[2j], x[2j+1]) at bit-reversed j.
					a, err = c.readPacked(rev[la])
					if err != nil {
						return err
					}
					b, err = c.readPacked(rev[ha])
					if err != nil {
						return err
					}
				} else {
					if a, err = src.ReadComplex(cfg.bufSlot(la)); err != nil {
						return err
					}
					if b, err = src.ReadComplex(cfg.bufSlot(ha)); err != nil {
						return err
					}
				}
				lo, hi := fixed.BFly(a, b, tw[la%half])
				if err := dst.WriteComplex(cfg.bufSlot(la), lo); err != nil {
					return err
				}
				if err := dst.WriteComplex(cfg.bufSlot(ha), hi); err != nil {
					return err
				}
				c.tick(1)
				c.Butterflies++
			}
		}
		srcInA = !srcInA
	}
	// After the loop srcInA names the buffer holding Ẑ = Z·2/K.
	zInA := srcInA

	// Untangle into the other buffer: for each k in [0, h):
	//   e = (Ẑ[k] + conj(Ẑ[(h-k) mod h]))/2,  o = -j·(Ẑ[k] - conj(...))/2,
	//   X̂[k] = (e + w·o)/2 (BFly lo),  X̂[K-k] = conj(X̂[k]) (mirror port).
	// The hi output of the same butterfly yields conj(X̂[h-k]); we write
	// X̂[k] and its mirror each cycle, covering all K bins over h cycles.
	zBuf, xBuf := c.memA(), c.memB()
	if !zInA {
		zBuf, xBuf = xBuf, zBuf
	}
	twFull := fft.FixedTwiddles(k) // e^{-j2πi/K}, i < K/2
	for bin := 0; bin < h; bin++ {
		z1, err := zBuf.ReadComplex(cfg.bufSlot(bin))
		if err != nil {
			return err
		}
		z2, err := zBuf.ReadComplex(cfg.bufSlot((h - bin) % h))
		if err != nil {
			return err
		}
		z2c := fixed.Conj(z2)
		e := fixed.CMean(z1, z2c)
		o := fixed.MulNegJ(fixed.CDiffMean(z1, z2c))
		lo, _ := fixed.BFly(e, o, twFull[bin])
		if err := xBuf.WriteComplex(cfg.bufSlot(bin), lo); err != nil {
			return err
		}
		if bin != 0 {
			if err := xBuf.WriteComplex(cfg.bufSlot(k-bin), fixed.Conj(lo)); err != nil {
				return err
			}
		}
		c.tick(1)
		c.Moves++ // untangle op on the move/ALU path
	}
	// Nyquist bin: X̂[h] = (e0 - o0)/2, the hi output at bin 0.
	z0, err := zBuf.ReadComplex(cfg.bufSlot(0))
	if err != nil {
		return err
	}
	z0c := fixed.Conj(z0)
	e0 := fixed.CMean(z0, z0c)
	o0 := fixed.MulNegJ(fixed.CDiffMean(z0, z0c))
	_, hi0 := fixed.BFly(e0, o0, twFull[0])
	if err := xBuf.WriteComplex(cfg.bufSlot(h), hi0); err != nil {
		return err
	}

	c.resultInA = !zInA // the untangled spectrum sits opposite Ẑ
	c.shuffled = false
	c.samplesValid = false
	return nil
}

// readPacked returns z[j] = (x[2j], x[2j+1]) from the sample buffer —
// the even/odd packing realised as AGU addressing.
func (c *Core) readPacked(j int) (fixed.Complex, error) {
	even, err := c.memA().ReadComplex(c.cfg.bufSlot(2 * j))
	if err != nil {
		return fixed.Complex{}, err
	}
	odd, err := c.memA().ReadComplex(c.cfg.bufSlot(2*j + 1))
	if err != nil {
		return fixed.Complex{}, err
	}
	return fixed.Complex{Re: even.Re, Im: odd.Re}, nil
}
