package montium

import (
	"strings"
	"testing"

	"tiledcfd/internal/trace"
)

func TestCoreTraceMatchesLedger(t *testing.T) {
	const k, m = 64, 16
	c := configuredCore(t, k, m, 2, 0)
	var rec trace.Recorder
	c.SetTracer(&rec, "tile0")
	if err := c.LoadSamples(testSamples(41, k)); err != nil {
		t.Fatal(err)
	}
	if err := c.RunFFT(); err != nil {
		t.Fatal(err)
	}
	if err := c.RunReshuffle(); err != nil {
		t.Fatal(err)
	}
	if err := c.RunInit(); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < c.Config().F; step++ {
		v, err := c.SpectrumValue(step)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.MACStep(step, v, v); err != nil {
			t.Fatal(err)
		}
	}
	c.FlushTrace()
	// The trace totals must equal the ledger per section.
	for _, section := range []string{SectionFFT, SectionReshuffle, SectionInit, SectionReadData, SectionMAC} {
		if got, want := rec.TotalIn("tile0", section), c.CyclesIn(section); got != want {
			t.Errorf("trace %s = %d, ledger %d", section, got, want)
		}
	}
	if rec.TotalIn("tile0", "") != c.Cycles() {
		t.Fatalf("trace total %d, ledger %d", rec.TotalIn("tile0", ""), c.Cycles())
	}
	// Spans are contiguous and ordered: FFT first, starting at 0.
	spans := rec.Spans()
	if len(spans) == 0 || spans[0].Section != SectionFFT || spans[0].Start != 0 {
		t.Fatalf("first span %+v", spans[0])
	}
	var csv strings.Builder
	if err := rec.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "tile0,FFT,0,") {
		t.Fatalf("csv missing FFT span: %s", csv.String()[:80])
	}
}

func TestSetTracerNilDetaches(t *testing.T) {
	const k, m = 64, 16
	c := configuredCore(t, k, m, 2, 0)
	var rec trace.Recorder
	c.SetTracer(&rec, "tile0")
	if err := c.LoadSamples(testSamples(43, k)); err != nil {
		t.Fatal(err)
	}
	if err := c.RunFFT(); err != nil {
		t.Fatal(err)
	}
	c.SetTracer(nil, "")
	if err := c.RunReshuffle(); err != nil {
		t.Fatal(err)
	}
	c.FlushTrace()
	if rec.TotalIn("tile0", SectionReshuffle) != 0 {
		t.Fatal("detached tracer still recording")
	}
	if rec.TotalIn("tile0", SectionFFT) == 0 {
		t.Fatal("attached phase missing (SetTracer should close the open span)")
	}
}
