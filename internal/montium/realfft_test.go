package montium

import (
	"math/cmplx"
	"testing"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/fixed"
	"tiledcfd/internal/sig"
)

func TestRunFFTRealInputMatchesComplexKernel(t *testing.T) {
	// The real-input kernel must agree with the complex kernel on the
	// same (real) samples within fixed-point rounding.
	for _, k := range []int{64, 256} {
		m := k / 4
		x := testSamples(uint64(200+k), k) // real samples (WGN Real:true)
		cplx := configuredCore(t, k, m, 4, 0)
		if err := cplx.LoadSamples(x); err != nil {
			t.Fatal(err)
		}
		if err := cplx.RunFFT(); err != nil {
			t.Fatal(err)
		}
		real := configuredCore(t, k, m, 4, 0)
		if err := real.LoadSamples(x); err != nil {
			t.Fatal(err)
		}
		if err := real.RunFFTRealInput(); err != nil {
			t.Fatal(err)
		}
		for v := 0; v < k; v++ {
			a, err := cplx.SpectrumValue(v)
			if err != nil {
				t.Fatal(err)
			}
			b, err := real.SpectrumValue(v)
			if err != nil {
				t.Fatal(err)
			}
			if d := cmplx.Abs(a.Complex128() - b.Complex128()); d > 2e-3 {
				t.Fatalf("K=%d bin %d: complex %v vs real-input %v (|d|=%g)",
					k, v, a.Complex128(), b.Complex128(), d)
			}
		}
	}
}

func TestRunFFTRealInputMatchesFloatReference(t *testing.T) {
	const k, m = 256, 64
	x := testSamples(203, k)
	c := configuredCore(t, k, m, 4, 0)
	if err := c.LoadSamples(x); err != nil {
		t.Fatal(err)
	}
	if err := c.RunFFTRealInput(); err != nil {
		t.Fatal(err)
	}
	// Float reference: RealForward of the same quantised samples, /K.
	fx := make([]float64, k)
	for i, v := range x {
		fx[i] = v.Re.Float()
	}
	want, err := fft.RealForward(fx)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < k; v++ {
		got, err := c.SpectrumValue(v)
		if err != nil {
			t.Fatal(err)
		}
		ref := want[v] / complex(float64(k), 0)
		if d := cmplx.Abs(got.Complex128() - ref); d > 2e-3 {
			t.Fatalf("bin %d: %v vs float %v", v, got.Complex128(), ref)
		}
	}
}

func TestRunFFTRealInputCycleCount(t *testing.T) {
	// The executed ablation: 590 cycles for K=256 (7 stages x (64+2) + 128
	// untangle) against the complex kernel's 1040.
	c := configuredCore(t, 256, 64, 4, 0)
	if err := c.LoadSamples(testSamples(205, 256)); err != nil {
		t.Fatal(err)
	}
	if err := c.RunFFTRealInput(); err != nil {
		t.Fatal(err)
	}
	if got := c.CyclesIn(SectionFFT); got != 590 {
		t.Fatalf("real-input FFT cycles = %d, want 590", got)
	}
	if c.Butterflies != 448 {
		t.Fatalf("butterflies = %d, want 448", c.Butterflies)
	}
}

func TestRunFFTRealInputFeedsDownstreamKernels(t *testing.T) {
	// The optimised FFT must compose with reshuffle/init unchanged.
	const k, m = 64, 16
	c := configuredCore(t, k, m, 2, 0)
	if err := c.LoadSamples(testSamples(207, k)); err != nil {
		t.Fatal(err)
	}
	if err := c.RunFFTRealInput(); err != nil {
		t.Fatal(err)
	}
	if err := c.RunReshuffle(); err != nil {
		t.Fatal(err)
	}
	if err := c.RunInit(); err != nil {
		t.Fatal(err)
	}
	// Chain contents must satisfy the tap expressions.
	t0 := -(m - 1)
	cfg := c.Config()
	for i := 0; i < cfg.OwnT(); i++ {
		a := cfg.LoA + i
		x, err := c.chainX().ReadComplex(cfg.chainSlot(i))
		if err != nil {
			t.Fatal(err)
		}
		want, err := c.naturalValue(t0 + a)
		if err != nil {
			t.Fatal(err)
		}
		if x != want {
			t.Fatalf("X tap %d wrong after real-input FFT", i)
		}
	}
}

func TestRunFFTRealInputValidation(t *testing.T) {
	c := configuredCore(t, 64, 16, 2, 0)
	if err := c.RunFFTRealInput(); err == nil {
		t.Fatal("without samples should fail")
	}
	// Complex samples are rejected.
	rng := sig.NewRand(209)
	cx := fixed.FromFloatSlice(sig.Samples(&sig.WGN{Sigma: 0.3, Rng: rng}, 64))
	if err := c.LoadSamples(cx); err != nil {
		t.Fatal(err)
	}
	if err := c.RunFFTRealInput(); err == nil {
		t.Fatal("complex samples should be rejected")
	}
	// After a complex-kernel run the samples are consumed.
	c2 := configuredCore(t, 64, 16, 2, 0)
	if err := c2.LoadSamples(testSamples(211, 64)); err != nil {
		t.Fatal(err)
	}
	if err := c2.RunFFT(); err != nil {
		t.Fatal(err)
	}
	if err := c2.RunFFTRealInput(); err == nil {
		t.Fatal("consumed samples should be rejected")
	}
}
