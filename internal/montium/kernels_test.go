package montium

import (
	"testing"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/fixed"
	"tiledcfd/internal/scf"
	"tiledcfd/internal/sig"
)

func testSamples(seed uint64, n int) []fixed.Complex {
	rng := sig.NewRand(seed)
	x := sig.Samples(&sig.WGN{Sigma: 0.4, Real: true, Rng: rng}, n)
	return fixed.FromFloatSlice(x)
}

func configuredCore(t *testing.T, k, m, q, idx int) *Core {
	t.Helper()
	cfg, err := NewCFDConfig(k, m, q, idx)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCore(idx)
	if err := c.ConfigureCFD(cfg); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRunFFTBitExactAgainstPlan(t *testing.T) {
	for _, k := range []int{64, 256} {
		m := k / 4
		c := configuredCore(t, k, m, 4, 0)
		x := testSamples(uint64(k), k)
		if err := c.LoadSamples(x); err != nil {
			t.Fatal(err)
		}
		if err := c.RunFFT(); err != nil {
			t.Fatal(err)
		}
		plan, err := fft.NewFixedPlan(k)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]fixed.Complex, k)
		if err := plan.Forward(want, x); err != nil {
			t.Fatal(err)
		}
		for v := 0; v < k; v++ {
			got, err := c.SpectrumValue(v)
			if err != nil {
				t.Fatal(err)
			}
			if got != want[v] {
				t.Fatalf("K=%d bin %d: core %+v, plan %+v", k, v, got, want[v])
			}
		}
	}
}

func TestRunFFTCycleCount(t *testing.T) {
	// E8 (FFT row): 256-point FFT = 8 stages x (128 butterflies + 2 setup)
	// = 1040 cycles, as the paper cites from [3].
	c := configuredCore(t, 256, 64, 4, 0)
	if err := c.LoadSamples(testSamples(1, 256)); err != nil {
		t.Fatal(err)
	}
	if err := c.RunFFT(); err != nil {
		t.Fatal(err)
	}
	if got := c.CyclesIn(SectionFFT); got != 1040 {
		t.Fatalf("FFT cycles = %d, want 1040", got)
	}
	if c.Butterflies != 1024 {
		t.Fatalf("butterflies = %d, want 1024", c.Butterflies)
	}
}

func TestRunReshuffle(t *testing.T) {
	const k = 64
	c := configuredCore(t, k, 16, 4, 0)
	if err := c.LoadSamples(testSamples(2, k)); err != nil {
		t.Fatal(err)
	}
	if err := c.RunFFT(); err != nil {
		t.Fatal(err)
	}
	if err := c.RunReshuffle(); err != nil {
		t.Fatal(err)
	}
	if got := c.CyclesIn(SectionReshuffle); got != k {
		t.Fatalf("reshuffle cycles = %d, want %d", got, k)
	}
	// Reversed buffer element i holds bin -i.
	for v := -k / 2; v < k/2; v++ {
		nat, err := c.naturalValue(v)
		if err != nil {
			t.Fatal(err)
		}
		rev, err := c.reversedValue(v)
		if err != nil {
			t.Fatal(err)
		}
		if nat != rev {
			t.Fatalf("bin %d: natural %+v != reversed-path %+v", v, nat, rev)
		}
	}
}

func TestRunInitChainContents(t *testing.T) {
	const k, m, q = 64, 16, 4
	c := configuredCore(t, k, m, q, 1) // interior core
	if err := c.LoadSamples(testSamples(3, k)); err != nil {
		t.Fatal(err)
	}
	if err := c.RunFFT(); err != nil {
		t.Fatal(err)
	}
	if err := c.RunReshuffle(); err != nil {
		t.Fatal(err)
	}
	if err := c.RunInit(); err != nil {
		t.Fatal(err)
	}
	if got := c.CyclesIn(SectionInit); got != int64(2*m-1) {
		t.Fatalf("init cycles = %d, want P=%d", got, 2*m-1)
	}
	t0 := -(m - 1)
	cfg := c.Config()
	for i := 0; i < cfg.OwnT(); i++ {
		a := cfg.LoA + i
		x, err := c.chainX().ReadComplex(cfg.chainSlot(i))
		if err != nil {
			t.Fatal(err)
		}
		wantX, err := c.naturalValue(t0 + a)
		if err != nil {
			t.Fatal(err)
		}
		if x != wantX {
			t.Fatalf("X slot %d (a=%d) = %+v, want bin %d = %+v", i, a, x, t0+a, wantX)
		}
		cv, err := c.chainC().ReadComplex(cfg.chainSlot(i))
		if err != nil {
			t.Fatal(err)
		}
		wantC, err := c.naturalValue(t0 - a)
		if err != nil {
			t.Fatal(err)
		}
		if cv != wantC {
			t.Fatalf("C slot %d (a=%d) = %+v, want bin %d = %+v", i, a, cv, t0-a, wantC)
		}
	}
}

func TestRunInitRequiresReshuffle(t *testing.T) {
	c := configuredCore(t, 64, 16, 4, 0)
	if err := c.LoadSamples(testSamples(4, 64)); err != nil {
		t.Fatal(err)
	}
	if err := c.RunFFT(); err != nil {
		t.Fatal(err)
	}
	if err := c.RunInit(); err == nil {
		t.Fatal("RunInit before RunReshuffle should fail")
	}
}

// runPlatformSync orchestrates q cores through the full CFD application
// synchronously (the concurrent version lives in internal/soc) and
// returns the assembled DSCF surface.
func runPlatformSync(t *testing.T, k, m, q int, x []fixed.Complex, blocks int) ([]*Core, *scf.FixedSurface) {
	t.Helper()
	cores := make([]*Core, q)
	for i := range cores {
		cores[i] = configuredCore(t, k, m, q, i)
	}
	f := 2*m - 1
	for n := 0; n < blocks; n++ {
		block := x[n*k : (n+1)*k]
		for _, c := range cores {
			if err := c.LoadSamples(block); err != nil {
				t.Fatal(err)
			}
			if err := c.RunFFT(); err != nil {
				t.Fatal(err)
			}
			if err := c.RunReshuffle(); err != nil {
				t.Fatal(err)
			}
			if err := c.RunInit(); err != nil {
				t.Fatal(err)
			}
		}
		active := make([]*Core, 0, q)
		for _, c := range cores {
			if c.Config().OwnT() > 0 {
				active = append(active, c)
			}
		}
		for step := 0; step < f; step++ {
			// Gather pre-shift boundary values.
			xIns := make([]fixed.Complex, len(active))
			cIns := make([]fixed.Complex, len(active))
			if step > 0 {
				for i, c := range active {
					if i+1 < len(active) {
						xLow, _, err := active[i+1].PeekBoundary()
						if err != nil {
							t.Fatal(err)
						}
						xIns[i] = xLow
					} else {
						v, err := c.SpectrumValue(step)
						if err != nil {
							t.Fatal(err)
						}
						xIns[i] = v
					}
					if i > 0 {
						_, cHigh, err := active[i-1].PeekBoundary()
						if err != nil {
							t.Fatal(err)
						}
						cIns[i] = cHigh
					} else {
						v, err := c.SpectrumValue(step)
						if err != nil {
							t.Fatal(err)
						}
						cIns[i] = v
					}
				}
			}
			for i, c := range active {
				if err := c.MACStep(step, xIns[i], cIns[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	surf := scf.NewFixedSurface(m)
	for _, c := range cores {
		cfg := c.Config()
		for i := 0; i < cfg.OwnT(); i++ {
			a := cfg.LoA + i
			for fi := 0; fi < f; fi++ {
				v, err := c.AccumulatorAt(i, fi)
				if err != nil {
					t.Fatal(err)
				}
				surf.Data[a+m-1][fi] = v
			}
		}
	}
	return cores, surf
}

func TestSingleCoreFullCFDMatchesReference(t *testing.T) {
	// Small grid so one core's memories hold everything (T=P).
	const k, m, blocks = 64, 16, 2
	p := scf.Params{K: k, M: m, Blocks: blocks}
	x := testSamples(21, p.WithDefaults().SamplesNeeded())
	want, err := scf.ComputeFixed(x, p)
	if err != nil {
		t.Fatal(err)
	}
	_, got := runPlatformSync(t, k, m, 1, x, blocks)
	if ok, diag := got.Equal(want); !ok {
		t.Fatalf("single-core Montium CFD deviates: %s", diag)
	}
}

func TestFourCoreFullCFDMatchesReference(t *testing.T) {
	// E8 data path: the paper's full platform (K=256, M=64, Q=4) must
	// produce the bit-exact reference DSCF.
	const k, m, q, blocks = 256, 64, 4, 2
	p := scf.Params{K: k, M: m, Blocks: blocks}
	x := testSamples(22, p.WithDefaults().SamplesNeeded())
	want, err := scf.ComputeFixed(x, p)
	if err != nil {
		t.Fatal(err)
	}
	_, got := runPlatformSync(t, k, m, q, x, blocks)
	if ok, diag := got.Equal(want); !ok {
		t.Fatalf("4-core Montium CFD deviates: %s", diag)
	}
}

func TestTable1Reproduction(t *testing.T) {
	// E8: one integration step on the paper's configuration must measure
	// exactly Table 1 on the fully loaded cores.
	const k, m, q = 256, 64, 4
	x := testSamples(23, k)
	cores, _ := runPlatformSync(t, k, m, q, x, 1)
	want := PaperTable1()
	got := cores[0].Table1()
	if got != want {
		t.Fatalf("Table 1 mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if got.Total() != 13996 {
		t.Fatalf("total %d, want 13996", got.Total())
	}
	// Core 3 owns 31 tasks, so its MAC row is 127·31·3.
	last := cores[3].Table1()
	if last.MultiplyAccumulate != 127*31*3 {
		t.Fatalf("core 3 MAC cycles %d, want %d", last.MultiplyAccumulate, 127*31*3)
	}
	// All other rows are identical across cores.
	if last.FFT != want.FFT || last.Reshuffle != want.Reshuffle ||
		last.Initialisation != want.Initialisation || last.ReadData != want.ReadData {
		t.Fatalf("core 3 shared rows differ: %+v", last)
	}
}

func TestMACCountMatchesPaper(t *testing.T) {
	// Paper: "The total number of complex multiply accumulate operations
	// equals T·F = 4064" per (fully loaded) core.
	const k, m, q = 256, 64, 4
	x := testSamples(29, k)
	cores, _ := runPlatformSync(t, k, m, q, x, 1)
	if cores[0].MACs != 4064 {
		t.Fatalf("core 0 MACs = %d, want 4064", cores[0].MACs)
	}
	if cores[3].MACs != 31*127 {
		t.Fatalf("core 3 MACs = %d, want 3937", cores[3].MACs)
	}
}

func TestConfigMemoryBudget(t *testing.T) {
	// E7: the paper's configuration fits (8128 of 8192 words)...
	cfg, err := NewCFDConfig(256, 64, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.AccumWordsUsed() != 8128 {
		t.Fatalf("accumulator words %d, want 8128", cfg.AccumWordsUsed())
	}
	// ...but Q=2 (T=64) or Q=1 (T=127) overflows M01..M08.
	if _, err := NewCFDConfig(256, 64, 2, 0); err == nil {
		t.Fatal("Q=2 at M=64 must exceed the 8K-word budget")
	}
	if _, err := NewCFDConfig(256, 64, 1, 0); err == nil {
		t.Fatal("Q=1 at M=64 must exceed the 8K-word budget")
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct{ k, m, q, idx int }{
		{100, 8, 4, 0}, // non-pow2 K
		{2, 2, 4, 0},   // K too small
		{64, 1, 4, 0},  // M too small
		{64, 20, 4, 0}, // grid exceeds K/2
		{64, 8, 0, 0},  // Q < 1
		{64, 8, 4, 4},  // core index out of range
		{64, 8, 4, -1}, // negative index
	}
	for i, c := range cases {
		if _, err := NewCFDConfig(c.k, c.m, c.q, c.idx); err == nil {
			t.Errorf("case %d (%+v) should fail", i, c)
		}
	}
}

func TestKernelsRequireConfig(t *testing.T) {
	c := NewCore(0)
	if err := c.LoadSamples(make([]fixed.Complex, 4)); err == nil {
		t.Error("LoadSamples without config should fail")
	}
	if err := c.RunFFT(); err == nil {
		t.Error("RunFFT without config should fail")
	}
	if err := c.RunReshuffle(); err == nil {
		t.Error("RunReshuffle without config should fail")
	}
	if err := c.RunInit(); err == nil {
		t.Error("RunInit without config should fail")
	}
	if err := c.MACStep(0, fixed.Complex{}, fixed.Complex{}); err == nil {
		t.Error("MACStep without config should fail")
	}
	if _, err := c.AccumulatorAt(0, 0); err == nil {
		t.Error("AccumulatorAt without config should fail")
	}
	if _, _, err := c.PeekBoundary(); err == nil {
		t.Error("PeekBoundary without config should fail")
	}
	if err := c.ConfigureCFD(nil); err == nil {
		t.Error("nil config should fail")
	}
}

func TestKernelArgumentValidation(t *testing.T) {
	c := configuredCore(t, 64, 16, 4, 0)
	if err := c.LoadSamples(make([]fixed.Complex, 10)); err == nil {
		t.Error("wrong sample count should fail")
	}
	if err := c.LoadSamples(testSamples(5, 64)); err != nil {
		t.Fatal(err)
	}
	if err := c.MACStep(-1, fixed.Complex{}, fixed.Complex{}); err == nil {
		t.Error("negative step should fail")
	}
	if err := c.MACStep(31, fixed.Complex{}, fixed.Complex{}); err == nil {
		t.Error("step >= F should fail")
	}
	if _, err := c.AccumulatorAt(99, 0); err == nil {
		t.Error("accumulator out of range should fail")
	}
	if _, err := c.AccumulatorAt(0, 99); err == nil {
		t.Error("accumulator fi out of range should fail")
	}
}

func TestZeroAccumulators(t *testing.T) {
	const k, m = 64, 16
	x := testSamples(31, k)
	cores, _ := runPlatformSync(t, k, m, 1, x, 1)
	c := cores[0]
	// Some accumulator must be non-zero after a run.
	nz := false
	for i := 0; i < c.Config().OwnT() && !nz; i++ {
		for fi := 0; fi < c.Config().F && !nz; fi++ {
			if v, _ := c.AccumulatorAt(i, fi); !v.IsZero() {
				nz = true
			}
		}
	}
	if !nz {
		t.Fatal("no accumulator became non-zero")
	}
	if err := c.ZeroAccumulators(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.Config().OwnT(); i++ {
		for fi := 0; fi < c.Config().F; fi++ {
			if v, _ := c.AccumulatorAt(i, fi); !v.IsZero() {
				t.Fatalf("accumulator (%d,%d) not cleared", i, fi)
			}
		}
	}
}

func TestPaperTable1Values(t *testing.T) {
	want := PaperTable1()
	if want.Total() != 13996 {
		t.Fatalf("paper total %d", want.Total())
	}
	s := want.String()
	for _, row := range []string{"multiply accumulate", "12192", "381", "1040", "256", "127", "13996"} {
		if !containsStr(s, row) {
			t.Fatalf("Table 1 rendering missing %q:\n%s", row, s)
		}
	}
}

func containsStr(haystack, needle string) bool {
	return len(haystack) >= len(needle) && indexStr(haystack, needle) >= 0
}

func indexStr(h, n string) int {
	for i := 0; i+len(n) <= len(h); i++ {
		if h[i:i+len(n)] == n {
			return i
		}
	}
	return -1
}
