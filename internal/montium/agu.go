package montium

import "fmt"

// AGU is a two-level affine address generation unit, the pattern the
// Montium memory AGUs provide ([3]): a nested loop
//
//	for outer := 0; outer < OuterCount; outer++ {
//	    for inner := 0; inner < InnerCount; inner++ {
//	        addr = (Base + outer·OuterStride + inner·InnerStride) mod Modulo
//	    }
//	}
//
// Next walks that sequence one address per call. Modulo 0 means no
// wrap-around. Every sequential, strided or modular access pattern the CFD
// kernels need (FFT stages, chain windows, reversed reshuffle order) is
// expressible this way, which is the architectural point: the address
// streams cost no ALU cycles.
type AGU struct {
	// Base is the first address generated.
	Base int
	// InnerCount and InnerStride describe the inner loop: InnerCount
	// addresses advancing by InnerStride.
	InnerCount, InnerStride int
	// OuterCount and OuterStride repeat the inner loop OuterCount times,
	// offsetting its base by OuterStride per repetition.
	OuterCount, OuterStride int
	// Modulo wraps generated addresses into [0, Modulo); 0 disables
	// wrap-around.
	Modulo int

	inner, outer int
	done         bool
}

// Reset rewinds the generator to its first address.
func (g *AGU) Reset() { g.inner, g.outer, g.done = 0, 0, false }

// Validate checks the loop bounds.
func (g *AGU) Validate() error {
	if g.InnerCount < 1 || g.OuterCount < 1 {
		return fmt.Errorf("montium: AGU counts %d/%d must be >= 1", g.InnerCount, g.OuterCount)
	}
	if g.Modulo < 0 {
		return fmt.Errorf("montium: AGU modulo %d must be >= 0", g.Modulo)
	}
	return nil
}

// Next returns the next address in the pattern. ok is false once the
// pattern is exhausted.
func (g *AGU) Next() (addr int, ok bool) {
	if g.done {
		return 0, false
	}
	addr = g.Base + g.outer*g.OuterStride + g.inner*g.InnerStride
	if g.Modulo > 0 {
		addr %= g.Modulo
		if addr < 0 {
			addr += g.Modulo
		}
	}
	g.inner++
	if g.inner >= g.InnerCount {
		g.inner = 0
		g.outer++
		if g.outer >= g.OuterCount {
			g.done = true
		}
	}
	return addr, true
}

// Remaining returns how many addresses the pattern will still produce.
func (g *AGU) Remaining() int {
	if g.done {
		return 0
	}
	return (g.OuterCount-g.outer)*g.InnerCount - g.inner
}
