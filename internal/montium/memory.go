package montium

import (
	"fmt"

	"tiledcfd/internal/fixed"
)

// Word is the Montium's 16-bit datapath word.
type Word = int16

// Memory geometry of the modelled core.
const (
	// NumMemories is the number of parallel memories (M01..M10).
	NumMemories = 10
	// MemWords is the capacity of each memory in 16-bit words; M01..M08
	// total the paper's 8K words.
	MemWords = 1024
	// AccumMemories is how many of the memories hold DSCF accumulators
	// (M01..M08 per Figure 11).
	AccumMemories = 8
	// AccumCapacityWords is the paper's "8K words of 16 bits".
	AccumCapacityWords = AccumMemories * MemWords
)

// Memory is one single-cycle 1024-word Montium memory with access
// counters. Address checking is strict: the CFD kernels are supposed to
// know exactly where everything is, and an out-of-range access is a bug.
type Memory struct {
	// Name identifies the memory (M01..M10).
	Name string
	data [MemWords]Word
	// Reads and Writes count the accesses performed.
	Reads, Writes int64
}

// Read returns the word at addr.
func (m *Memory) Read(addr int) (Word, error) {
	if addr < 0 || addr >= MemWords {
		return 0, fmt.Errorf("montium: %s read address %d outside [0,%d)", m.Name, addr, MemWords)
	}
	m.Reads++
	return m.data[addr], nil
}

// Write stores w at addr.
func (m *Memory) Write(addr int, w Word) error {
	if addr < 0 || addr >= MemWords {
		return fmt.Errorf("montium: %s write address %d outside [0,%d)", m.Name, addr, MemWords)
	}
	m.Writes++
	m.data[addr] = w
	return nil
}

// ReadComplex reads the complex value stored at complex index idx
// (interleaved re/im at words 2idx, 2idx+1).
func (m *Memory) ReadComplex(idx int) (fixed.Complex, error) {
	re, err := m.Read(2 * idx)
	if err != nil {
		return fixed.Complex{}, err
	}
	im, err := m.Read(2*idx + 1)
	if err != nil {
		return fixed.Complex{}, err
	}
	return fixed.Complex{Re: fixed.Q15(re), Im: fixed.Q15(im)}, nil
}

// WriteComplex stores c at complex index idx.
func (m *Memory) WriteComplex(idx int, c fixed.Complex) error {
	if err := m.Write(2*idx, Word(c.Re)); err != nil {
		return err
	}
	return m.Write(2*idx+1, Word(c.Im))
}

// ComplexCapacity returns how many complex values fit in one memory.
func ComplexCapacity() int { return MemWords / 2 }
