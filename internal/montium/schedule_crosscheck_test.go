package montium

import (
	"testing"

	"tiledcfd/internal/mapping"
)

// TestSimulationMatchesAnalyticSchedule cross-validates the two step-2
// views of the same application: the cycle counts measured by executing
// the micro-kernels must equal the closed-form schedule derived in
// internal/mapping, for every core and several geometries.
func TestSimulationMatchesAnalyticSchedule(t *testing.T) {
	cases := []struct{ k, m, q int }{
		{256, 64, 4}, // the paper's configuration
		{64, 16, 1},
		{64, 16, 2},
		{64, 16, 3},
		{128, 32, 4},
	}
	for _, c := range cases {
		x := testSamples(uint64(c.k+c.q), c.k)
		cores, _ := runPlatformSync(t, c.k, c.m, c.q, x, 1)
		for q, core := range cores {
			if core.Config().OwnT() == 0 {
				continue
			}
			sched, err := mapping.BuildCoreSchedule(c.m, c.k, c.q, q, mapping.PaperCycleModel())
			if err != nil {
				t.Fatalf("K=%d M=%d Q=%d q=%d: %v", c.k, c.m, c.q, q, err)
			}
			got := core.Table1()
			if got.MultiplyAccumulate != int64(sched.CyclesOf(mapping.OpMAC)) {
				t.Errorf("K=%d M=%d Q=%d q=%d: MAC %d != analytic %d",
					c.k, c.m, c.q, q, got.MultiplyAccumulate, sched.CyclesOf(mapping.OpMAC))
			}
			if got.ReadData != int64(sched.CyclesOf(mapping.OpReadData)) {
				t.Errorf("q=%d: read data %d != analytic %d", q, got.ReadData, sched.CyclesOf(mapping.OpReadData))
			}
			if got.FFT != int64(sched.CyclesOf(mapping.OpFFT)) {
				t.Errorf("q=%d: FFT %d != analytic %d", q, got.FFT, sched.CyclesOf(mapping.OpFFT))
			}
			if got.Reshuffle != int64(sched.CyclesOf(mapping.OpReshuffle)) {
				t.Errorf("q=%d: reshuffle %d != analytic %d", q, got.Reshuffle, sched.CyclesOf(mapping.OpReshuffle))
			}
			if got.Initialisation != int64(sched.CyclesOf(mapping.OpInit)) {
				t.Errorf("q=%d: init %d != analytic %d", q, got.Initialisation, sched.CyclesOf(mapping.OpInit))
			}
			if got.Total() != int64(sched.TotalCycles()) {
				t.Errorf("q=%d: total %d != analytic %d", q, got.Total(), sched.TotalCycles())
			}
		}
	}
}
