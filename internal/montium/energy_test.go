package montium

import (
	"math"
	"testing"

	"tiledcfd/internal/fixed"
	"tiledcfd/internal/sig"
)

func TestRunEnergyMatchesSignalPower(t *testing.T) {
	const k, m = 64, 16
	c := configuredCore(t, k, m, 2, 0)
	rng := sig.NewRand(71)
	x := sig.Samples(&sig.WGN{Sigma: 0.4, Real: true, Rng: rng}, k)
	qx := fixed.FromFloatSlice(x)
	if err := c.LoadSamples(qx); err != nil {
		t.Fatal(err)
	}
	energy, err := c.RunEnergy()
	if err != nil {
		t.Fatal(err)
	}
	want := sig.Power(fixed.ToFloatSlice(qx)) * float64(k)
	if math.Abs(energy-want) > 1e-6*(1+want) {
		t.Fatalf("energy %v, want %v", energy, want)
	}
	// One MAC per sample, K cycles, own ledger section.
	if got := c.CyclesIn(SectionEnergy); got != k {
		t.Fatalf("energy cycles %d, want %d", got, k)
	}
}

func TestRunEnergyOrderingEnforced(t *testing.T) {
	const k, m = 64, 16
	c := configuredCore(t, k, m, 2, 0)
	if _, err := c.RunEnergy(); err == nil {
		t.Fatal("RunEnergy before LoadSamples should fail")
	}
	if err := c.LoadSamples(testSamples(73, k)); err != nil {
		t.Fatal(err)
	}
	if err := c.RunFFT(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunEnergy(); err == nil {
		t.Fatal("RunEnergy after RunFFT should fail (samples consumed)")
	}
	// Reloading samples re-enables it.
	if err := c.LoadSamples(testSamples(74, k)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunEnergy(); err != nil {
		t.Fatalf("RunEnergy after reload: %v", err)
	}
	// And the energy stage does not disturb the Table 1 sections.
	if c.CyclesIn(SectionMAC) != 0 || c.CyclesIn(SectionReadData) != 0 {
		t.Fatal("energy stage leaked into Table 1 sections")
	}
}

func TestRunEnergyDetectsPowerDifference(t *testing.T) {
	// The hardware energy statistic separates a loud band from a quiet
	// one — the "energy detector" half of CFD.
	const k, m = 64, 16
	quiet := configuredCore(t, k, m, 2, 0)
	loud := configuredCore(t, k, m, 2, 0)
	rngQ := sig.NewRand(75)
	rngL := sig.NewRand(76)
	xq := fixed.FromFloatSlice(sig.Samples(&sig.WGN{Sigma: 0.1, Real: true, Rng: rngQ}, k))
	xl := fixed.FromFloatSlice(sig.Samples(&sig.WGN{Sigma: 0.4, Real: true, Rng: rngL}, k))
	if err := quiet.LoadSamples(xq); err != nil {
		t.Fatal(err)
	}
	if err := loud.LoadSamples(xl); err != nil {
		t.Fatal(err)
	}
	eq, err := quiet.RunEnergy()
	if err != nil {
		t.Fatal(err)
	}
	el, err := loud.RunEnergy()
	if err != nil {
		t.Fatal(err)
	}
	if el < 4*eq {
		t.Fatalf("loud %v vs quiet %v: expected ~16x separation", el, eq)
	}
}
