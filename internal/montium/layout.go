package montium

import (
	"fmt"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/mapping"
)

// CFDConfig describes the CFD application instance a core participates in:
// the spectral geometry (K, M), the platform folding (Q cores, this core's
// index) and the derived memory layout. Build one with NewCFDConfig and
// install it with Core.ConfigureCFD.
type CFDConfig struct {
	// K is the FFT size (256 in the paper).
	K int
	// M is the grid half-extent (64 in the paper).
	M int
	// Q is the number of cores in the platform (4 in the paper).
	Q int
	// CoreIndex is this core's q in [0, Q).
	CoreIndex int

	// Derived quantities.
	F      int // frequencies per task, 2M-1
	P      int // logical processors, 2M-1
	T      int // tasks-per-core bound ⌈P/Q⌉
	LoTask int // first owned task (inclusive)
	HiTask int // last owned task (exclusive)
	LoA    int // frequency offset of the first owned task

	fold mapping.Folding
	plan *fft.FixedPlan
}

// NewCFDConfig validates the geometry, derives the folding and memory
// layout, and returns a ready configuration.
//
// Memory budget rules (the E7 experiment):
//   - accumulators: T·F complex values must fit the 8K words of M01..M08,
//     i.e. 2·T·F <= 8192 (the paper: 32·127 complex < 4K complex);
//   - each of M09/M10 must hold one T-deep chain segment plus one K-point
//     spectrum buffer: 2·(T+K) <= 1024 words.
func NewCFDConfig(k, m, q, coreIndex int) (*CFDConfig, error) {
	if !fft.IsPow2(k) || k < 4 {
		return nil, fmt.Errorf("montium: K=%d must be a power of two >= 4", k)
	}
	if m < 2 {
		return nil, fmt.Errorf("montium: M=%d must be >= 2", m)
	}
	if 2*(m-1) > k/2 {
		return nil, fmt.Errorf("montium: grid extent 2(M-1)=%d exceeds K/2=%d", 2*(m-1), k/2)
	}
	if q < 1 {
		return nil, fmt.Errorf("montium: Q=%d must be >= 1", q)
	}
	if coreIndex < 0 || coreIndex >= q {
		return nil, fmt.Errorf("montium: core index %d outside [0,%d)", coreIndex, q)
	}
	p := 2*m - 1
	fold, err := mapping.NewFolding(p, q)
	if err != nil {
		return nil, err
	}
	cfg := &CFDConfig{
		K: k, M: m, Q: q, CoreIndex: coreIndex,
		F: p, P: p, T: fold.T, fold: fold,
	}
	cfg.LoTask, cfg.HiTask = fold.TasksOf(coreIndex)
	cfg.LoA = mapping.AOf(cfg.LoTask, m)
	// E7 budget checks.
	if accWords := 2 * cfg.T * cfg.F; accWords > AccumCapacityWords {
		return nil, fmt.Errorf("montium: accumulators need %d words, M01..M08 hold %d (T=%d F=%d)",
			accWords, AccumCapacityWords, cfg.T, cfg.F)
	}
	if commWords := 2 * (cfg.T + cfg.K); commWords > MemWords {
		return nil, fmt.Errorf("montium: chain+spectrum need %d words, M09/M10 hold %d each",
			commWords, MemWords)
	}
	if cfg.plan, err = fft.NewFixedPlan(k); err != nil {
		return nil, err
	}
	return cfg, nil
}

// OwnT returns how many tasks this core actually owns (can be < T on the
// last core, e.g. 31 on core 3 of the paper's platform).
func (cfg *CFDConfig) OwnT() int { return cfg.HiTask - cfg.LoTask }

// AccumWordsUsed returns the accumulator footprint in 16-bit words for the
// uniform layout (T·F complex cells per core).
func (cfg *CFDConfig) AccumWordsUsed() int { return 2 * cfg.T * cfg.F }

// chainSlot returns the complex index of local chain slot i within
// M09/M10 (the segments start at complex index 0).
func (cfg *CFDConfig) chainSlot(i int) int { return i }

// bufSlot returns the complex index of spectrum-buffer element j within
// M09/M10 (the buffers start right after the chain segment).
func (cfg *CFDConfig) bufSlot(j int) int { return cfg.T + j }

// accumCell returns the memory bank (0..7 for M01..M08) and complex offset
// of the accumulator for local task i, frequency index fi.
func (cfg *CFDConfig) accumCell(i, fi int) (bank, off int) {
	cell := i*cfg.F + fi
	return cell / ComplexCapacity(), cell % ComplexCapacity()
}

// ConfigureCFD installs the configuration on the core. Accumulator
// memories are expected to be zero (a fresh core) or explicitly reset by
// the caller between runs.
func (c *Core) ConfigureCFD(cfg *CFDConfig) error {
	if cfg == nil {
		return fmt.Errorf("montium: nil CFD configuration")
	}
	c.cfg = cfg
	return nil
}

// Config returns the installed configuration, or nil.
func (c *Core) Config() *CFDConfig { return c.cfg }
