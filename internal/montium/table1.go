package montium

import (
	"fmt"
	"strings"
)

// Table1 is the cycle breakdown of one DSCF integration step on one core,
// in the paper's Table 1 rows.
type Table1 struct {
	// MultiplyAccumulate counts the folded DSCF loop's cycles.
	MultiplyAccumulate int64
	// ReadData counts the sample-streaming cycles.
	ReadData int64
	// FFT counts the FFT kernel cycles.
	FFT int64
	// Reshuffle counts the memory reshuffling cycles.
	Reshuffle int64
	// Initialisation counts the per-step setup cycles.
	Initialisation int64
}

// Total returns the summed cycle count (the paper: 13996).
func (t Table1) Total() int64 {
	return t.MultiplyAccumulate + t.ReadData + t.FFT + t.Reshuffle + t.Initialisation
}

// Table1 extracts the ledger into the paper's table. Call after running
// exactly one integration step (or ResetCycles between steps).
func (c *Core) Table1() Table1 {
	return Table1{
		MultiplyAccumulate: c.CyclesIn(SectionMAC),
		ReadData:           c.CyclesIn(SectionReadData),
		FFT:                c.CyclesIn(SectionFFT),
		Reshuffle:          c.CyclesIn(SectionReshuffle),
		Initialisation:     c.CyclesIn(SectionInit),
	}
}

// PaperTable1 returns the published cycle counts of the paper's Table 1
// for the 256-point, Q=4 configuration.
func PaperTable1() Table1 {
	return Table1{
		MultiplyAccumulate: 12192,
		ReadData:           381,
		FFT:                1040,
		Reshuffle:          256,
		Initialisation:     127,
	}
}

// String renders the table in the paper's layout.
func (t Table1) String() string {
	var b strings.Builder
	b.WriteString("Task                  #cycles\n")
	fmt.Fprintf(&b, "multiply accumulate   %7d\n", t.MultiplyAccumulate)
	fmt.Fprintf(&b, "read data             %7d\n", t.ReadData)
	fmt.Fprintf(&b, "FFT                   %7d\n", t.FFT)
	fmt.Fprintf(&b, "reshuffling           %7d\n", t.Reshuffle)
	fmt.Fprintf(&b, "initialisation        %7d\n", t.Initialisation)
	fmt.Fprintf(&b, "total                 %7d\n", t.Total())
	return b.String()
}
