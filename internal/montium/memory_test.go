package montium

import (
	"testing"
	"testing/quick"

	"tiledcfd/internal/fixed"
)

func TestMemoryReadWrite(t *testing.T) {
	m := &Memory{Name: "M01"}
	if err := m.Write(0, 42); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(MemWords-1, -7); err != nil {
		t.Fatal(err)
	}
	v, err := m.Read(0)
	if err != nil || v != 42 {
		t.Fatalf("Read(0) = %d, %v", v, err)
	}
	v, err = m.Read(MemWords - 1)
	if err != nil || v != -7 {
		t.Fatalf("Read(last) = %d, %v", v, err)
	}
	if m.Reads != 2 || m.Writes != 2 {
		t.Fatalf("counters %d/%d", m.Reads, m.Writes)
	}
}

func TestMemoryBounds(t *testing.T) {
	m := &Memory{Name: "M02"}
	if _, err := m.Read(-1); err == nil {
		t.Error("negative read should fail")
	}
	if _, err := m.Read(MemWords); err == nil {
		t.Error("overflow read should fail")
	}
	if err := m.Write(-1, 0); err == nil {
		t.Error("negative write should fail")
	}
	if err := m.Write(MemWords, 0); err == nil {
		t.Error("overflow write should fail")
	}
}

func TestMemoryComplexInterleave(t *testing.T) {
	m := &Memory{Name: "M09"}
	c := fixed.Complex{Re: 123, Im: -456}
	if err := m.WriteComplex(5, c); err != nil {
		t.Fatal(err)
	}
	// Words 10 and 11 hold re and im.
	re, _ := m.Read(10)
	im, _ := m.Read(11)
	if re != 123 || im != -456 {
		t.Fatalf("interleave: %d/%d", re, im)
	}
	got, err := m.ReadComplex(5)
	if err != nil || got != c {
		t.Fatalf("ReadComplex = %+v, %v", got, err)
	}
	if _, err := m.ReadComplex(ComplexCapacity()); err == nil {
		t.Error("complex overflow should fail")
	}
	if err := m.WriteComplex(ComplexCapacity(), c); err == nil {
		t.Error("complex overflow write should fail")
	}
}

func TestCapacityConstants(t *testing.T) {
	// The paper: M01..M08 total 8K words of 16 bits.
	if AccumCapacityWords != 8192 {
		t.Fatalf("accumulator capacity %d words, want 8192", AccumCapacityWords)
	}
	if ComplexCapacity() != 512 {
		t.Fatalf("complex capacity %d, want 512", ComplexCapacity())
	}
	if NumMemories != 10 {
		t.Fatalf("memories %d, want 10 (M01..M10)", NumMemories)
	}
}

func TestAGUSequential(t *testing.T) {
	g := AGU{Base: 4, InnerCount: 3, InnerStride: 1, OuterCount: 2, OuterStride: 10}
	g.Reset()
	want := []int{4, 5, 6, 14, 15, 16}
	for i, w := range want {
		if g.Remaining() != len(want)-i {
			t.Fatalf("Remaining = %d at %d", g.Remaining(), i)
		}
		a, ok := g.Next()
		if !ok || a != w {
			t.Fatalf("Next #%d = %d,%v want %d", i, a, ok, w)
		}
	}
	if _, ok := g.Next(); ok {
		t.Error("exhausted AGU should return ok=false")
	}
	if g.Remaining() != 0 {
		t.Error("Remaining after exhaustion != 0")
	}
}

func TestAGUModuloWrap(t *testing.T) {
	g := AGU{Base: 6, InnerCount: 4, InnerStride: 1, OuterCount: 1, Modulo: 8}
	g.Reset()
	want := []int{6, 7, 0, 1}
	for _, w := range want {
		a, ok := g.Next()
		if !ok || a != w {
			t.Fatalf("modulo walk got %d want %d", a, w)
		}
	}
	// Negative strides wrap positively.
	n := AGU{Base: 0, InnerCount: 3, InnerStride: -1, OuterCount: 1, Modulo: 8}
	n.Reset()
	wantNeg := []int{0, 7, 6}
	for _, w := range wantNeg {
		a, ok := n.Next()
		if !ok || a != w {
			t.Fatalf("negative stride got %d want %d", a, w)
		}
	}
}

func TestAGUValidate(t *testing.T) {
	bad := AGU{InnerCount: 0, OuterCount: 1}
	if err := bad.Validate(); err == nil {
		t.Error("zero inner count should fail")
	}
	bad2 := AGU{InnerCount: 1, OuterCount: 1, Modulo: -1}
	if err := bad2.Validate(); err == nil {
		t.Error("negative modulo should fail")
	}
	good := AGU{InnerCount: 1, OuterCount: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("good AGU rejected: %v", err)
	}
}

// Property: an AGU emits exactly InnerCount·OuterCount addresses, each
// matching the closed-form affine expression.
func TestQuickAGUAffine(t *testing.T) {
	f := func(base int8, ic, oc uint8, is, os int8, mod uint8) bool {
		g := AGU{
			Base:        int(base),
			InnerCount:  int(ic%8) + 1,
			InnerStride: int(is % 8),
			OuterCount:  int(oc%8) + 1,
			OuterStride: int(os % 8),
			Modulo:      int(mod % 64), // 0 = no wrap
		}
		if g.Validate() != nil {
			return false
		}
		g.Reset()
		count := 0
		for outer := 0; outer < g.OuterCount; outer++ {
			for inner := 0; inner < g.InnerCount; inner++ {
				want := g.Base + outer*g.OuterStride + inner*g.InnerStride
				if g.Modulo > 0 {
					want %= g.Modulo
					if want < 0 {
						want += g.Modulo
					}
				}
				got, ok := g.Next()
				if !ok || got != want {
					return false
				}
				count++
			}
		}
		_, ok := g.Next()
		return !ok && count == g.InnerCount*g.OuterCount
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoreLedger(t *testing.T) {
	c := NewCore(0)
	c.BeginSection("alpha")
	c.tick(5)
	c.BeginSection("beta")
	c.tick(3)
	c.tick(2)
	if c.Cycles() != 10 {
		t.Fatalf("cycles %d", c.Cycles())
	}
	if c.CyclesIn("alpha") != 5 || c.CyclesIn("beta") != 5 {
		t.Fatalf("ledger %d/%d", c.CyclesIn("alpha"), c.CyclesIn("beta"))
	}
	secs := c.Sections()
	if len(secs) != 2 || secs[0] != "alpha" {
		t.Fatalf("sections %v", secs)
	}
	c.ResetCycles()
	if c.Cycles() != 0 || len(c.Sections()) != 0 {
		t.Fatal("ResetCycles incomplete")
	}
}

func TestCoreString(t *testing.T) {
	c := NewCore(3)
	c.BeginSection("x")
	c.tick(1)
	s := c.String()
	if s == "" || c.Mem[0].Name != "M01" || c.Mem[9].Name != "M10" {
		t.Fatalf("core naming wrong: %q %s %s", s, c.Mem[0].Name, c.Mem[9].Name)
	}
}
