package montium

import "testing"

// TestKernelModelMatchesTable1 pins the closed-form kernel costs to the
// paper's measured Table 1 rows for the K=256 configuration.
func TestKernelModelMatchesTable1(t *testing.T) {
	if got := FFTKernelCycles(256); got != 1040 {
		t.Errorf("FFTKernelCycles(256) = %d, want 1040 (Table 1)", got)
	}
	if got := ReshuffleCycles(256); got != 256 {
		t.Errorf("ReshuffleCycles(256) = %d, want 256 (Table 1)", got)
	}
	if got := ReadDataCycles(256); got != 384 {
		t.Errorf("ReadDataCycles(256) = %d, want 384 (~ the measured 381)", got)
	}
	if got := MACKernelCycles(12192); got != 12192 {
		t.Errorf("MACKernelCycles = %d, want identity", got)
	}
	if got := AlignCycles(100); got != 100 {
		t.Errorf("AlignCycles = %d, want identity", got)
	}
	if got := FFTKernelCycles(2); got != 3 {
		t.Errorf("FFTKernelCycles(2) = %d, want 1·(1+2) = 3", got)
	}
}
