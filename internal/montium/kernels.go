package montium

import (
	"fmt"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/fixed"
)

// memA/memB return the ping-pong buffer memories: A is M09, B is M10.
func (c *Core) memA() *Memory { return c.Mem[8] }
func (c *Core) memB() *Memory { return c.Mem[9] }

// chainX/chainC return the memories hosting the chain segments: the X
// chain lives in M09, the conjugate-operand chain in M10 (Figure 11 maps
// the communication registers onto M09 and M10).
func (c *Core) chainX() *Memory { return c.Mem[8] }
func (c *Core) chainC() *Memory { return c.Mem[9] }

func (c *Core) needConfig() error {
	if c.cfg == nil {
		return fmt.Errorf("montium: core %d has no CFD configuration", c.ID)
	}
	return nil
}

// LoadSamples places one K-sample block into FFT buffer A. The sample
// stream arrives over the platform's interconnect concurrently with the
// previous block's computation, so this transfer contributes no cycles to
// the Table 1 budget (the paper's accounting starts at the FFT).
func (c *Core) LoadSamples(x []fixed.Complex) error {
	if err := c.needConfig(); err != nil {
		return err
	}
	if len(x) != c.cfg.K {
		return fmt.Errorf("montium: LoadSamples got %d samples, want K=%d", len(x), c.cfg.K)
	}
	for j, v := range x {
		if err := c.memA().WriteComplex(c.cfg.bufSlot(j), v); err != nil {
			return err
		}
	}
	c.resultInA = true // samples (and later the spectrum) start in A
	c.shuffled = false
	c.samplesValid = true
	return nil
}

// RunEnergy executes the energy-detector stage of the paper's section 2
// ("CFD consists of a combination of an energy detector and a single
// correlator block"): it accumulates Σ|x_k|² over the loaded block at one
// complex multiply-accumulate per cycle (K cycles), using the ALU's wide
// accumulator, and returns the block energy as a float. It must run after
// LoadSamples and before RunFFT (which reuses the sample buffer); the
// paper's Table 1 does not budget this stage, so it lands in its own
// ledger section.
func (c *Core) RunEnergy() (float64, error) {
	if err := c.needConfig(); err != nil {
		return 0, err
	}
	if !c.samplesValid {
		return 0, fmt.Errorf("montium: RunEnergy needs freshly loaded samples (before RunFFT)")
	}
	cfg := c.cfg
	c.BeginSection(SectionEnergy)
	var acc fixed.CAcc
	for j := 0; j < cfg.K; j++ {
		v, err := c.memA().ReadComplex(cfg.bufSlot(j))
		if err != nil {
			return 0, err
		}
		acc.AddProdConj(v, v)
		c.tick(1)
		c.MACs++
	}
	return real(acc.Float()), nil
}

// RunFFT executes the in-core radix-2 FFT micro-program on the loaded
// block: log2(K) stages, each with 2 AGU/interconnect reconfiguration
// cycles plus one butterfly per cycle, ping-ponging between buffers A and
// B. Stage 0 consumes its inputs through the AGU's bit-reversed addressing
// mode (no extra cycles). For K = 256 the schedule is 8·(128+2) = 1040
// cycles — the paper's Table 1 "FFT" row.
//
// Data semantics are bit-identical to fft.FixedPlan.Forward: same
// butterfly primitive, same twiddles, same per-stage 1/2 scaling.
func (c *Core) RunFFT() error {
	if err := c.needConfig(); err != nil {
		return err
	}
	cfg := c.cfg
	c.BeginSection(SectionFFT)
	rev := cfg.plan.BitrevTable()
	srcInA := true
	for s := 0; s < cfg.plan.Stages(); s++ {
		c.tick(2) // AGU + interconnect reconfiguration for the stage
		span := 2 << s
		half := span / 2
		tw := cfg.plan.StageTwiddles(s)
		src, dst := c.memA(), c.memB()
		if !srcInA {
			src, dst = dst, src
		}
		lo := AGU{Base: 0, InnerCount: half, InnerStride: 1, OuterCount: cfg.K / span, OuterStride: span}
		hi := AGU{Base: half, InnerCount: half, InnerStride: 1, OuterCount: cfg.K / span, OuterStride: span}
		lo.Reset()
		hi.Reset()
		for {
			la, ok := lo.Next()
			if !ok {
				break
			}
			ha, _ := hi.Next()
			ra, rb := la, ha
			if s == 0 {
				ra, rb = rev[la], rev[ha]
			}
			a, err := src.ReadComplex(cfg.bufSlot(ra))
			if err != nil {
				return err
			}
			b, err := src.ReadComplex(cfg.bufSlot(rb))
			if err != nil {
				return err
			}
			outLo, outHi := fixed.BFly(a, b, tw[la%half])
			if err := dst.WriteComplex(cfg.bufSlot(la), outLo); err != nil {
				return err
			}
			if err := dst.WriteComplex(cfg.bufSlot(ha), outHi); err != nil {
				return err
			}
			c.tick(1)
			c.Butterflies++
		}
		srcInA = !srcInA
	}
	c.resultInA = srcInA // after the last swap, srcInA names the result buffer
	c.shuffled = false
	c.samplesValid = false // the ping-pong pass consumed the sample buffer
	return nil
}

// RunReshuffle builds the frequency-reversed copy of the spectrum in the
// opposite buffer: element i receives bin (-i mod K). This is the paper's
// "reshuffling of the conjugated values" (Figure 1): the conjugate-operand
// chain consumes the spectrum in reversed bin order, and with the reversed
// copy in place every chain access becomes a unit-stride AGU pattern. One
// move per cycle: K cycles (256 in Table 1). The conjugation itself is
// applied for free by the ALU's conjugating multiplier port.
func (c *Core) RunReshuffle() error {
	if err := c.needConfig(); err != nil {
		return err
	}
	cfg := c.cfg
	c.BeginSection(SectionReshuffle)
	src, dst := c.memA(), c.memB()
	if !c.resultInA {
		src, dst = dst, src
	}
	for i := 0; i < cfg.K; i++ {
		v, err := src.ReadComplex(cfg.bufSlot(fft.BinIndex(cfg.K, -i)))
		if err != nil {
			return err
		}
		if err := dst.WriteComplex(cfg.bufSlot(i), v); err != nil {
			return err
		}
		c.tick(1)
		c.Moves++
	}
	c.shuffled = true
	return nil
}

// RunInit preloads this core's chain segments with the first window of
// the schedule: X slot i holds bin t0+a, conjugate-operand slot i holds
// bin t0-a, for a = LoA+i and t0 = -(M-1). Architecturally the whole
// array shifts the initial window in through the chain ends, which takes
// P lockstep cycles regardless of Q — the paper's "initialisation: 127".
func (c *Core) RunInit() error {
	if err := c.needConfig(); err != nil {
		return err
	}
	if !c.shuffled {
		return fmt.Errorf("montium: RunInit before RunReshuffle")
	}
	cfg := c.cfg
	c.BeginSection(SectionInit)
	c.tick(int64(cfg.P))
	t0 := -(cfg.M - 1)
	for i := 0; i < cfg.OwnT(); i++ {
		a := cfg.LoA + i
		xv, err := c.naturalValue(t0 + a)
		if err != nil {
			return err
		}
		if err := c.chainX().WriteComplex(cfg.chainSlot(i), xv); err != nil {
			return err
		}
		cv, err := c.reversedValue(t0 - a)
		if err != nil {
			return err
		}
		if err := c.chainC().WriteComplex(cfg.chainSlot(i), cv); err != nil {
			return err
		}
	}
	return nil
}

// naturalValue reads spectrum bin v from the natural-order buffer.
func (c *Core) naturalValue(v int) (fixed.Complex, error) {
	src := c.memA()
	if !c.resultInA {
		src = c.memB()
	}
	return src.ReadComplex(c.cfg.bufSlot(fft.BinIndex(c.cfg.K, v)))
}

// reversedValue reads spectrum bin v through the reshuffled buffer
// (element (-v mod K) of the reversed copy holds bin v).
func (c *Core) reversedValue(v int) (fixed.Complex, error) {
	src := c.memB()
	if !c.resultInA {
		src = c.memA()
	}
	return src.ReadComplex(c.cfg.bufSlot(fft.BinIndex(c.cfg.K, -v)))
}

// SpectrumValue exposes a spectrum bin for array-end injection: when this
// core sits at an end of the folded array, the platform feeds the chain
// entry from the core's own spectrum buffer during the read-data window
// (no additional cycles). Returns an error before the FFT has run.
func (c *Core) SpectrumValue(bin int) (fixed.Complex, error) {
	if err := c.needConfig(); err != nil {
		return fixed.Complex{}, err
	}
	return c.naturalValue(bin)
}

// PeekBoundary returns the chain values about to leave this core towards
// its neighbours at the next shift: the lowest-a X tap (X flows towards
// -a) and the highest-a conjugate-operand tap (that chain flows towards
// +a). Reading them is part of the neighbour's read-data window and costs
// this core nothing.
func (c *Core) PeekBoundary() (xLow, cHigh fixed.Complex, err error) {
	if err := c.needConfig(); err != nil {
		return fixed.Complex{}, fixed.Complex{}, err
	}
	own := c.cfg.OwnT()
	if own == 0 {
		return fixed.Complex{}, fixed.Complex{}, fmt.Errorf("montium: core %d owns no tasks", c.ID)
	}
	if xLow, err = c.chainX().ReadComplex(c.cfg.chainSlot(0)); err != nil {
		return
	}
	cHigh, err = c.chainC().ReadComplex(c.cfg.chainSlot(own - 1))
	return
}

// MACStep executes one time step of the folded schedule (paper Figure 9):
// a 3-cycle read-data phase (chain shift with boundary values xIn/cIn
// entering, switch update) followed by this core's T multiply-accumulates,
// 3 cycles each (accumulator read, complex MAC, write-back).
//
// step is the 0-based time index (f = -(M-1)+step). On step 0 the chains
// keep their initialised contents; xIn/cIn are ignored.
func (c *Core) MACStep(step int, xIn, cIn fixed.Complex) error {
	if err := c.needConfig(); err != nil {
		return err
	}
	cfg := c.cfg
	if step < 0 || step >= cfg.F {
		return fmt.Errorf("montium: MACStep %d outside [0,%d)", step, cfg.F)
	}
	own := cfg.OwnT()
	c.BeginSection(SectionReadData)
	c.tick(3)
	if step > 0 && own > 0 {
		// X chain shifts towards -a: slot i <- slot i+1, xIn enters at the top.
		for i := 0; i < own-1; i++ {
			v, err := c.chainX().ReadComplex(cfg.chainSlot(i + 1))
			if err != nil {
				return err
			}
			if err := c.chainX().WriteComplex(cfg.chainSlot(i), v); err != nil {
				return err
			}
		}
		if err := c.chainX().WriteComplex(cfg.chainSlot(own-1), xIn); err != nil {
			return err
		}
		// Conjugate-operand chain shifts towards +a: slot i <- slot i-1.
		for i := own - 1; i > 0; i-- {
			v, err := c.chainC().ReadComplex(cfg.chainSlot(i - 1))
			if err != nil {
				return err
			}
			if err := c.chainC().WriteComplex(cfg.chainSlot(i), v); err != nil {
				return err
			}
		}
		if err := c.chainC().WriteComplex(cfg.chainSlot(0), cIn); err != nil {
			return err
		}
	}
	c.BeginSection(SectionMAC)
	for i := 0; i < own; i++ {
		x, err := c.chainX().ReadComplex(cfg.chainSlot(i))
		if err != nil {
			return err
		}
		cv, err := c.chainC().ReadComplex(cfg.chainSlot(i))
		if err != nil {
			return err
		}
		bank, off := cfg.accumCell(i, step)
		acc, err := c.Mem[bank].ReadComplex(off)
		if err != nil {
			return err
		}
		acc = fixed.CAdd(acc, fixed.CMulConj(x, cv))
		if err := c.Mem[bank].WriteComplex(off, acc); err != nil {
			return err
		}
		c.tick(3)
		c.MACs++
	}
	return nil
}

// AccumulatorAt returns the accumulated DSCF cell of local task i at
// frequency index fi (0-based; f = fi-(M-1)).
func (c *Core) AccumulatorAt(i, fi int) (fixed.Complex, error) {
	if err := c.needConfig(); err != nil {
		return fixed.Complex{}, err
	}
	if i < 0 || i >= c.cfg.OwnT() || fi < 0 || fi >= c.cfg.F {
		return fixed.Complex{}, fmt.Errorf("montium: accumulator (%d,%d) outside %dx%d", i, fi, c.cfg.OwnT(), c.cfg.F)
	}
	bank, off := c.cfg.accumCell(i, fi)
	return c.Mem[bank].ReadComplex(off)
}

// ZeroAccumulators clears the DSCF accumulator region (a configuration
// step before the first integration block; not part of the per-block
// Table 1 budget, which the paper counts per integration step).
func (c *Core) ZeroAccumulators() error {
	if err := c.needConfig(); err != nil {
		return err
	}
	for i := 0; i < c.cfg.T; i++ {
		for fi := 0; fi < c.cfg.F; fi++ {
			bank, off := c.cfg.accumCell(i, fi)
			if err := c.Mem[bank].WriteComplex(off, fixed.Complex{}); err != nil {
				return err
			}
		}
	}
	return nil
}
