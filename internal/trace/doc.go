// Package trace records cycle-annotated execution spans from the
// simulated cores, for timeline inspection and CSV export. A Recorder is
// safe for concurrent use by multiple tiles.
package trace
