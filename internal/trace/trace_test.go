package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestRecorderBasics(t *testing.T) {
	var r Recorder
	r.Record(Span{Source: "tile0", Section: "FFT", Start: 0, Cycles: 1040})
	r.Record(Span{Source: "tile0", Section: "reshuffling", Start: 1040, Cycles: 256})
	r.Record(Span{Source: "tile1", Section: "FFT", Start: 0, Cycles: 1040})
	if r.Len() != 3 {
		t.Fatalf("len %d", r.Len())
	}
	if got := r.TotalIn("tile0", "FFT"); got != 1040 {
		t.Fatalf("TotalIn(tile0,FFT) = %d", got)
	}
	if got := r.TotalIn("", "FFT"); got != 2080 {
		t.Fatalf("TotalIn(*,FFT) = %d", got)
	}
	if got := r.TotalIn("tile0", ""); got != 1296 {
		t.Fatalf("TotalIn(tile0,*) = %d", got)
	}
}

func TestRecorderDropsEmptySpans(t *testing.T) {
	var r Recorder
	r.Record(Span{Source: "x", Section: "y", Cycles: 0})
	r.Record(Span{Source: "x", Section: "y", Cycles: -5})
	if r.Len() != 0 {
		t.Fatal("empty spans recorded")
	}
}

func TestRecorderSpansAreACopy(t *testing.T) {
	var r Recorder
	r.Record(Span{Source: "a", Section: "s", Cycles: 1})
	spans := r.Spans()
	spans[0].Cycles = 999
	if r.Spans()[0].Cycles != 1 {
		t.Fatal("Spans leaked internal storage")
	}
}

func TestWriteCSV(t *testing.T) {
	var r Recorder
	r.Record(Span{Source: "tile0", Section: "FFT", Start: 10, Cycles: 20})
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "source,section,start,cycles\n") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "tile0,FFT,10,20") {
		t.Fatalf("missing row: %q", out)
	}
}

func TestReset(t *testing.T) {
	var r Recorder
	r.Record(Span{Source: "a", Section: "b", Cycles: 3})
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	var r Recorder
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(Span{Source: "tile", Section: "s", Start: int64(i), Cycles: 1})
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("len %d, want 800", r.Len())
	}
	if r.TotalIn("tile", "s") != 800 {
		t.Fatal("totals wrong under concurrency")
	}
}
