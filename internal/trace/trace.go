package trace

import (
	"fmt"
	"io"
	"sync"
)

// Span is one contiguous stretch of cycles a source spent in a section.
type Span struct {
	// Source identifies the emitting unit (e.g. "tile0").
	Source string
	// Section is the activity name (the Table 1 row).
	Section string
	// Start is the source-local cycle at which the span began.
	Start int64
	// Cycles is the span length.
	Cycles int64
}

// Recorder accumulates spans.
type Recorder struct {
	mu    sync.Mutex
	spans []Span
}

// Record appends a span. Zero-length spans are dropped.
func (r *Recorder) Record(s Span) {
	if s.Cycles <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = append(r.spans, s)
}

// Spans returns a copy of all recorded spans in record order.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// Len returns the number of recorded spans.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// TotalIn sums the cycles a source spent in a section ("" matches any
// source / any section).
func (r *Recorder) TotalIn(source, section string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var sum int64
	for _, s := range r.spans {
		if (source == "" || s.Source == source) && (section == "" || s.Section == section) {
			sum += s.Cycles
		}
	}
	return sum
}

// WriteCSV emits "source,section,start,cycles" rows with a header.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "source,section,start,cycles"); err != nil {
		return err
	}
	for _, s := range r.Spans() {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%d\n", s.Source, s.Section, s.Start, s.Cycles); err != nil {
			return err
		}
	}
	return nil
}

// Reset discards all spans.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = nil
}
