package scf

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Surface is a computed DSCF: a (2M-1)×(2M-1) grid indexed by frequency
// offset a (rows) and frequency f (columns), each spanning [-(M-1), M-1].
//
// A surface may be alpha-pruned: when Alphas is non-nil the surface
// holds only the listed rows (Data[i] is the row for a = Alphas[i]) and
// snapshot cost scales with the candidate count instead of M. Pruned
// cells are bit-identical to their full-plane values; absent rows do
// not exist — At panics on them, and detectors restrict themselves to
// AlphaValues.
type Surface struct {
	// M is the grid half-extent.
	M int
	// Alphas, when non-nil, lists the row offsets the surface holds,
	// strictly ascending; Data[i] is the row for a = Alphas[i]. Nil
	// means dense: Data[a+M-1].
	Alphas []int
	// Data holds the cells, one row per held offset, indexed
	// Data[rowIndex][f+M-1].
	Data [][]complex128
}

// NewSurface allocates a zeroed surface for half-extent M.
func NewSurface(m int) *Surface {
	n := 2*m - 1
	data := make([][]complex128, n)
	cells := make([]complex128, n*n)
	for i := range data {
		data[i], cells = cells[:n], cells[n:]
	}
	return &Surface{M: m, Data: data}
}

// NewSparseSurface allocates a zeroed alpha-pruned surface holding only
// the rows in alphas, which must be strictly ascending within
// [-(M-1), M-1]. It panics on a malformed row set (programming error —
// Params.SurfaceAlphas builds well-formed ones).
func NewSparseSurface(m int, alphas []int) *Surface {
	n := 2*m - 1
	for i, a := range alphas {
		if a < -(m-1) || a > m-1 {
			panic(fmt.Sprintf("scf: sparse row a=%d outside ±%d", a, m-1))
		}
		if i > 0 && alphas[i-1] >= a {
			panic(fmt.Sprintf("scf: sparse rows not strictly ascending at a=%d", a))
		}
	}
	held := append([]int(nil), alphas...)
	data := make([][]complex128, len(held))
	cells := make([]complex128, len(held)*n)
	for i := range data {
		data[i], cells = cells[:n], cells[n:]
	}
	return &Surface{M: m, Alphas: held, Data: data}
}

// NewSurfaceFor allocates the surface shape p's estimation produces:
// dense, or alpha-pruned to p.SurfaceAlphas when candidates are set.
func NewSurfaceFor(p Params) *Surface {
	if !p.Pruned() {
		return NewSurface(p.M)
	}
	return NewSparseSurface(p.M, p.SurfaceAlphas())
}

// Pruned reports whether the surface is alpha-pruned.
func (s *Surface) Pruned() bool { return s.Alphas != nil }

// rowIndex returns the Data index of row a, or -1 when the surface does
// not hold it.
func (s *Surface) rowIndex(a int) int {
	if s.Alphas == nil {
		if a < -(s.M-1) || a > s.M-1 {
			return -1
		}
		return a + s.M - 1
	}
	lo, hi := 0, len(s.Alphas)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.Alphas[mid] < a {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.Alphas) && s.Alphas[lo] == a {
		return lo
	}
	return -1
}

// alphaOf returns the offset a of Data row i.
func (s *Surface) alphaOf(i int) int {
	if s.Alphas == nil {
		return i - (s.M - 1)
	}
	return s.Alphas[i]
}

// HasRow reports whether the surface holds row a.
func (s *Surface) HasRow(a int) bool { return s.rowIndex(a) >= 0 }

// Row returns the cells of row a (indexed f+M-1), or nil when the
// surface does not hold it.
func (s *Surface) Row(a int) []complex128 {
	i := s.rowIndex(a)
	if i < 0 {
		return nil
	}
	return s.Data[i]
}

// AlphaValues returns the row offsets the surface holds, ascending —
// every a in [-(M-1), M-1] for a dense surface, the candidate set for a
// pruned one. Data[i] and AlphaProfile()[i] correspond to the returned
// slice's element i.
func (s *Surface) AlphaValues() []int {
	if s.Alphas != nil {
		return append([]int(nil), s.Alphas...)
	}
	out := make([]int, s.Extent())
	for i := range out {
		out[i] = i - (s.M - 1)
	}
	return out
}

// Extent returns the grid side length 2M-1.
func (s *Surface) Extent() int { return 2*s.M - 1 }

// InRange reports whether (f, a) lies on the grid.
func (s *Surface) InRange(f, a int) bool {
	return f >= -(s.M-1) && f <= s.M-1 && a >= -(s.M-1) && a <= s.M-1
}

// At returns S_f^a. It panics if (f, a) is off the grid or on a row a
// pruned surface does not hold (programming error).
func (s *Surface) At(f, a int) complex128 {
	i := s.rowIndex(a)
	if i < 0 || f < -(s.M-1) || f > s.M-1 {
		panic(fmt.Sprintf("scf: At(%d,%d) outside ±%d or pruned away", f, a, s.M-1))
	}
	return s.Data[i][f+s.M-1]
}

// Add accumulates v into S_f^a.
func (s *Surface) Add(f, a int, v complex128) {
	i := s.rowIndex(a)
	if i < 0 || f < -(s.M-1) || f > s.M-1 {
		panic(fmt.Sprintf("scf: Add(%d,%d) outside ±%d or pruned away", f, a, s.M-1))
	}
	s.Data[i][f+s.M-1] += v
}

// Scale multiplies every cell by the real factor g (used for the 1/N
// normalisation of expression 3).
func (s *Surface) Scale(g float64) {
	for _, row := range s.Data {
		for i := range row {
			row[i] *= complex(g, 0)
		}
	}
}

// AlphaProfile returns, for each held offset a, the summed magnitude
// Σ_f |S_f^a|. This "cycle-frequency profile" is the statistic
// cyclostationary detectors threshold: peaks away from a=0 reveal hidden
// periodicity. Index i corresponds to AlphaValues()[i] — for a dense
// surface that is a = i-(M-1); a pruned surface yields only candidate
// rows, so the profile cost scales with the candidate count.
func (s *Surface) AlphaProfile() []float64 {
	prof := make([]float64, len(s.Data))
	for ai, row := range s.Data {
		var sum float64
		for _, v := range row {
			sum += cmplx.Abs(v)
		}
		prof[ai] = sum
	}
	return prof
}

// MaxFeature returns the grid point of largest magnitude. With excludeA0
// true the a=0 row (the ordinary power spectral density, which always
// dominates) is skipped — this is how a blind detector searches for
// cyclic features.
func (s *Surface) MaxFeature(excludeA0 bool) (f, a int, mag float64) {
	mag = -1
	for ai, row := range s.Data {
		av := s.alphaOf(ai)
		if excludeA0 && av == 0 {
			continue
		}
		for fi, v := range row {
			if m := cmplx.Abs(v); m > mag {
				mag, f, a = m, fi-(s.M-1), av
			}
		}
	}
	return f, a, mag
}

// PSD returns the a=0 row, which is the averaged cyclic periodogram at
// cycle frequency zero: the ordinary power spectral density estimate.
// Pruned surfaces always hold it (Params.CandidateRows includes a=0).
func (s *Surface) PSD() []complex128 {
	row := s.Row(0)
	if row == nil {
		panic("scf: PSD on a surface without the a=0 row")
	}
	out := make([]complex128, len(row))
	copy(out, row)
	return out
}

// MirrorHermitian fills the a < 0 rows from the completed a >= 0 rows:
// S_f^{-a} = conj(S_f^a). For estimators whose cell algebra is exactly
// Hermitian in a (the direct DSCF and FAM — each (f, -a) term is the
// termwise conjugate of the (f, a) term, and conjugation and real scaling
// commute with summation exactly in floating point), the mirrored cells
// are bit-identical to accumulating them directly, at half the work.
func (s *Surface) MirrorHermitian() {
	m := s.M
	if s.Alphas != nil {
		for si, a := range s.Alphas {
			if a <= 0 {
				continue
			}
			di := s.rowIndex(-a)
			if di < 0 {
				continue
			}
			src, dst := s.Data[si], s.Data[di]
			for i, v := range src {
				dst[i] = cmplx.Conj(v)
			}
		}
		return
	}
	for a := 1; a <= m-1; a++ {
		src, dst := s.Data[a+m-1], s.Data[m-1-a]
		for i, v := range src {
			dst[i] = cmplx.Conj(v)
		}
	}
}

// HermitianError returns the maximum magnitude of S_f^{-a} - conj(S_f^a)
// over the grid: an exact DSCF has zero; float and fixed implementations
// should be at rounding level. Used by invariant tests.
func (s *Surface) HermitianError() float64 {
	worst := 0.0
	for _, a := range s.AlphaValues() {
		if !s.HasRow(-a) {
			continue
		}
		for f := -(s.M - 1); f <= s.M-1; f++ {
			d := cmplx.Abs(s.At(f, -a) - cmplx.Conj(s.At(f, a)))
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// MaxAbsDiff returns the largest cellwise magnitude difference between two
// surfaces of equal extent and row set; it panics on shape mismatch.
func MaxAbsDiff(a, b *Surface) float64 {
	if a.M != b.M || len(a.Data) != len(b.Data) {
		panic(fmt.Sprintf("scf: MaxAbsDiff shapes M=%d/%d rows=%d/%d", a.M, b.M, len(a.Data), len(b.Data)))
	}
	worst := 0.0
	for i := range a.Data {
		for j := range a.Data[i] {
			if d := cmplx.Abs(a.Data[i][j] - b.Data[i][j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// TotalEnergy returns Σ |S_f^a|² over the grid.
func (s *Surface) TotalEnergy() float64 {
	var e float64
	for _, row := range s.Data {
		for _, v := range row {
			e += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	return e
}

// Coherence returns the spectral autocoherence
// |S_f^a| / sqrt(S0(f+a)·S0(f-a)) where S0 is the PSD row, a normalised
// feature strength in [0, ~1] that is independent of absolute signal
// level. Cells whose normaliser underflows return 0. The small floor eps
// guards empty bands.
func (s *Surface) Coherence(f, a int, eps float64) float64 {
	num := cmplx.Abs(s.At(f, a))
	m := s.M - 1
	// S0 at f±a; those bins may fall outside the f grid — clamp into range
	// (the PSD row only spans the grid); detectors use interior cells.
	fp, fm := f+a, f-a
	if fp > m {
		fp = m
	}
	if fp < -m {
		fp = -m
	}
	if fm > m {
		fm = m
	}
	if fm < -m {
		fm = -m
	}
	d := math.Sqrt(cmplx.Abs(s.At(fp, 0))*cmplx.Abs(s.At(fm, 0))) + eps
	if d == 0 {
		return 0
	}
	return num / d
}
