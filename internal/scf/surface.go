package scf

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Surface is a computed DSCF: a (2M-1)×(2M-1) grid indexed by frequency
// offset a (rows) and frequency f (columns), each spanning [-(M-1), M-1].
type Surface struct {
	// M is the grid half-extent.
	M int
	// Data holds the cells, indexed Data[a+M-1][f+M-1].
	Data [][]complex128
}

// NewSurface allocates a zeroed surface for half-extent M.
func NewSurface(m int) *Surface {
	n := 2*m - 1
	data := make([][]complex128, n)
	cells := make([]complex128, n*n)
	for i := range data {
		data[i], cells = cells[:n], cells[n:]
	}
	return &Surface{M: m, Data: data}
}

// Extent returns the grid side length 2M-1.
func (s *Surface) Extent() int { return 2*s.M - 1 }

// InRange reports whether (f, a) lies on the grid.
func (s *Surface) InRange(f, a int) bool {
	return f >= -(s.M-1) && f <= s.M-1 && a >= -(s.M-1) && a <= s.M-1
}

// At returns S_f^a. It panics if (f, a) is off the grid (programming error).
func (s *Surface) At(f, a int) complex128 {
	if !s.InRange(f, a) {
		panic(fmt.Sprintf("scf: At(%d,%d) outside ±%d", f, a, s.M-1))
	}
	return s.Data[a+s.M-1][f+s.M-1]
}

// Add accumulates v into S_f^a.
func (s *Surface) Add(f, a int, v complex128) {
	if !s.InRange(f, a) {
		panic(fmt.Sprintf("scf: Add(%d,%d) outside ±%d", f, a, s.M-1))
	}
	s.Data[a+s.M-1][f+s.M-1] += v
}

// Scale multiplies every cell by the real factor g (used for the 1/N
// normalisation of expression 3).
func (s *Surface) Scale(g float64) {
	for _, row := range s.Data {
		for i := range row {
			row[i] *= complex(g, 0)
		}
	}
}

// AlphaProfile returns, for each offset a in [-(M-1), M-1], the summed
// magnitude Σ_f |S_f^a|. This "cycle-frequency profile" is the statistic
// cyclostationary detectors threshold: peaks away from a=0 reveal hidden
// periodicity. Index i corresponds to a = i-(M-1).
func (s *Surface) AlphaProfile() []float64 {
	prof := make([]float64, s.Extent())
	for ai, row := range s.Data {
		var sum float64
		for _, v := range row {
			sum += cmplx.Abs(v)
		}
		prof[ai] = sum
	}
	return prof
}

// MaxFeature returns the grid point of largest magnitude. With excludeA0
// true the a=0 row (the ordinary power spectral density, which always
// dominates) is skipped — this is how a blind detector searches for
// cyclic features.
func (s *Surface) MaxFeature(excludeA0 bool) (f, a int, mag float64) {
	mag = -1
	for ai, row := range s.Data {
		av := ai - (s.M - 1)
		if excludeA0 && av == 0 {
			continue
		}
		for fi, v := range row {
			if m := cmplx.Abs(v); m > mag {
				mag, f, a = m, fi-(s.M-1), av
			}
		}
	}
	return f, a, mag
}

// PSD returns the a=0 row, which is the averaged cyclic periodogram at
// cycle frequency zero: the ordinary power spectral density estimate.
func (s *Surface) PSD() []complex128 {
	row := s.Data[s.M-1]
	out := make([]complex128, len(row))
	copy(out, row)
	return out
}

// MirrorHermitian fills the a < 0 rows from the completed a >= 0 rows:
// S_f^{-a} = conj(S_f^a). For estimators whose cell algebra is exactly
// Hermitian in a (the direct DSCF and FAM — each (f, -a) term is the
// termwise conjugate of the (f, a) term, and conjugation and real scaling
// commute with summation exactly in floating point), the mirrored cells
// are bit-identical to accumulating them directly, at half the work.
func (s *Surface) MirrorHermitian() {
	m := s.M
	for a := 1; a <= m-1; a++ {
		src, dst := s.Data[a+m-1], s.Data[m-1-a]
		for i, v := range src {
			dst[i] = cmplx.Conj(v)
		}
	}
}

// HermitianError returns the maximum magnitude of S_f^{-a} - conj(S_f^a)
// over the grid: an exact DSCF has zero; float and fixed implementations
// should be at rounding level. Used by invariant tests.
func (s *Surface) HermitianError() float64 {
	worst := 0.0
	for a := -(s.M - 1); a <= s.M-1; a++ {
		for f := -(s.M - 1); f <= s.M-1; f++ {
			d := cmplx.Abs(s.At(f, -a) - cmplx.Conj(s.At(f, a)))
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// MaxAbsDiff returns the largest cellwise magnitude difference between two
// surfaces of equal extent; it panics on extent mismatch.
func MaxAbsDiff(a, b *Surface) float64 {
	if a.M != b.M {
		panic(fmt.Sprintf("scf: MaxAbsDiff extents %d vs %d", a.M, b.M))
	}
	worst := 0.0
	for i := range a.Data {
		for j := range a.Data[i] {
			if d := cmplx.Abs(a.Data[i][j] - b.Data[i][j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// TotalEnergy returns Σ |S_f^a|² over the grid.
func (s *Surface) TotalEnergy() float64 {
	var e float64
	for _, row := range s.Data {
		for _, v := range row {
			e += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	return e
}

// Coherence returns the spectral autocoherence
// |S_f^a| / sqrt(S0(f+a)·S0(f-a)) where S0 is the PSD row, a normalised
// feature strength in [0, ~1] that is independent of absolute signal
// level. Cells whose normaliser underflows return 0. The small floor eps
// guards empty bands.
func (s *Surface) Coherence(f, a int, eps float64) float64 {
	num := cmplx.Abs(s.At(f, a))
	m := s.M - 1
	// S0 at f±a; those bins may fall outside the f grid — clamp into range
	// (the PSD row only spans the grid); detectors use interior cells.
	fp, fm := f+a, f-a
	if fp > m {
		fp = m
	}
	if fp < -m {
		fp = -m
	}
	if fm > m {
		fm = m
	}
	if fm < -m {
		fm = -m
	}
	d := math.Sqrt(cmplx.Abs(s.At(fp, 0))*cmplx.Abs(s.At(fm, 0))) + eps
	if d == 0 {
		return 0
	}
	return num / d
}
