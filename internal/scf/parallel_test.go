package scf

import (
	"testing"

	"tiledcfd/internal/sig"
)

func TestComputeParallelBitIdentical(t *testing.T) {
	// The in-order merge must make the parallel path bit-identical to the
	// sequential one, not merely close.
	p := Params{K: 64, M: 16, Blocks: 9}
	rng := sig.NewRand(31)
	x := sig.Samples(&sig.WGN{Sigma: 0.5, Rng: rng}, p.WithDefaults().SamplesNeeded())
	seq, seqStats, err := Compute(x, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8, 0 /* = NumCPU */} {
		par, parStats, err := ComputeParallel(x, p, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range seq.Data {
			for j := range seq.Data[i] {
				if seq.Data[i][j] != par.Data[i][j] {
					t.Fatalf("workers=%d: cell (%d,%d) differs: %v vs %v",
						workers, i, j, seq.Data[i][j], par.Data[i][j])
				}
			}
		}
		if parStats.DSCFMults != seqStats.DSCFMults || parStats.FFTMults != seqStats.FFTMults {
			t.Fatalf("workers=%d: stats differ: %+v vs %+v", workers, parStats, seqStats)
		}
	}
}

func TestComputeParallelWithWindowAndHop(t *testing.T) {
	p := Params{K: 32, M: 8, Blocks: 5, Hop: 16}
	rng := sig.NewRand(33)
	x := sig.Samples(&sig.WGN{Sigma: 0.5, Rng: rng}, p.SamplesNeeded())
	seq, _, err := Compute(x, p)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := ComputeParallel(x, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(seq, par); d != 0 {
		t.Fatalf("hopped parallel differs by %v", d)
	}
}

func TestComputeParallelErrors(t *testing.T) {
	if _, _, err := ComputeParallel(make([]complex128, 4), Params{K: 64, M: 16}, 2); err == nil {
		t.Error("short input should fail")
	}
	if _, _, err := ComputeParallel(make([]complex128, 64), Params{K: 60, M: 8, Blocks: 1, Hop: 60}, 2); err == nil {
		t.Error("bad params should fail")
	}
}

func TestComputeParallelMoreWorkersThanBlocks(t *testing.T) {
	p := Params{K: 32, M: 8, Blocks: 2}
	rng := sig.NewRand(35)
	x := sig.Samples(&sig.WGN{Sigma: 0.5, Rng: rng}, p.WithDefaults().SamplesNeeded())
	par, _, err := ComputeParallel(x, p, 16)
	if err != nil {
		t.Fatal(err)
	}
	seq, _, err := Compute(x, p)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(seq, par); d != 0 {
		t.Fatalf("worker clamp broke equality: %v", d)
	}
}
