package scf

import (
	"fmt"
	"math/cmplx"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/fixed"
)

// AccuracyReport quantifies how closely the bit-true Q15 path tracks the
// float reference — the numerical side of the paper's section 4.1
// argument that 16-bit memories suffice "for dynamic ranges smaller than
// 96 dB".
type AccuracyReport struct {
	// Blocks is the integration length examined.
	Blocks int
	// WorstAbsErr is the largest |fixed - float| over the grid (in the
	// fixed path's own scale, where the FFT output is DFT/K).
	WorstAbsErr float64
	// WorstRelToPeak is WorstAbsErr relative to the float PSD peak.
	WorstRelToPeak float64
	// SaturatedCells counts accumulator cells pinned at ±full scale in
	// either component — non-zero means the 16-bit accumulation clipped.
	SaturatedCells int
}

// CountSaturatedCells returns how many cells of a fixed surface sit at
// the positive or negative rail in either component.
func CountSaturatedCells(s *FixedSurface) int {
	n := 0
	for _, row := range s.Data {
		for _, c := range row {
			if c.Re == fixed.MaxQ15 || c.Re == fixed.MinQ15 ||
				c.Im == fixed.MaxQ15 || c.Im == fixed.MinQ15 {
				n++
			}
		}
	}
	return n
}

// MeasureFixedAccuracy runs both the float and the Q15 paths over the
// same samples and reports the deviation. The float surface is rescaled
// by 1/K² to the fixed path's units before comparison.
func MeasureFixedAccuracy(x []complex128, p Params) (AccuracyReport, error) {
	p = p.WithDefaults()
	ref, _, err := Compute(x, p)
	if err != nil {
		return AccuracyReport{}, err
	}
	fs, err := ComputeFixed(fixed.FromFloatSlice(x), p)
	if err != nil {
		return AccuracyReport{}, err
	}
	got := fs.Float(p.Blocks)
	ref.Scale(1 / float64(p.K*p.K))
	peak := 0.0
	for f := -(p.M - 1); f <= p.M-1; f++ {
		if v := cmplx.Abs(ref.At(f, 0)); v > peak {
			peak = v
		}
	}
	if peak == 0 {
		return AccuracyReport{}, fmt.Errorf("scf: zero-power reference, accuracy undefined")
	}
	rep := AccuracyReport{Blocks: p.Blocks, SaturatedCells: CountSaturatedCells(fs)}
	for a := -(p.M - 1); a <= p.M-1; a++ {
		for f := -(p.M - 1); f <= p.M-1; f++ {
			if d := cmplx.Abs(got.At(f, a) - ref.At(f, a)); d > rep.WorstAbsErr {
				rep.WorstAbsErr = d
			}
		}
	}
	rep.WorstRelToPeak = rep.WorstAbsErr / peak
	return rep, nil
}

// AccumulateFixedPrescaled performs the Q15 accumulation with every
// product arithmetically right-shifted by `shift` bits before the
// saturating add. Choosing shift = ceil(log2(Blocks)) guarantees the
// running sum of full-scale products cannot clip — the block-scaling
// policy a long-integration deployment of the paper's application would
// use (at the cost of shift bits of small-signal resolution). shift = 0
// reproduces AccumulateFixed exactly.
func AccumulateFixedPrescaled(spectra [][]fixed.Complex, p Params, shift uint) (*FixedSurface, error) {
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if shift > 14 {
		return nil, fmt.Errorf("scf: prescale shift %d leaves no resolution (max 14)", shift)
	}
	s := NewFixedSurface(p.M)
	for _, spec := range spectra {
		if len(spec) != p.K {
			return nil, fmt.Errorf("scf: spectrum length %d, want %d", len(spec), p.K)
		}
		for a := -(p.M - 1); a <= p.M-1; a++ {
			for f := -(p.M - 1); f <= p.M-1; f++ {
				xp := spec[fft.BinIndex(p.K, f+a)]
				xm := spec[fft.BinIndex(p.K, f-a)]
				prod := fixed.CMulConj(xp, xm)
				prod = fixed.Complex{Re: prod.Re >> shift, Im: prod.Im >> shift}
				cell := &s.Data[a+p.M-1][f+p.M-1]
				*cell = fixed.CAdd(*cell, prod)
			}
		}
	}
	return s, nil
}
