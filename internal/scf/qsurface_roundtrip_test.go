package scf

import (
	"math"
	"math/rand"
	"testing"
)

// roundTripSurface builds a float surface whose cells are exactly
// representable at one power-of-two scale, the precondition under which
// the QuantiseSurface/Float pair must round-trip bit-for-bit.
func roundTripSurface(rng *rand.Rand, m int, alphas []int, exp int) *Surface {
	var s *Surface
	if alphas != nil {
		s = NewSparseSurface(m, alphas)
	} else {
		s = NewSurface(m)
	}
	scale := math.Ldexp(1.0/32768, exp)
	cell := func() float64 {
		// Leave the negative rail out of the peak position race: a peak of
		// exactly -1.0 renormalises to the next exponent, which is a value-
		// preserving but not bit-preserving representation change.
		return float64(rng.Intn(1<<16-1)-(1<<15-1)) * scale
	}
	for ai, row := range s.Data {
		for fi := range row {
			s.Data[ai][fi] = complex(cell(), cell())
		}
	}
	// Pin a top-half peak so QuantiseSurface picks exactly exp back.
	s.Data[0][0] = complex(float64(16384+rng.Intn(16383))*scale, 0)
	return s
}

// TestQSurfaceRoundTripExact is the conversion-pair property the Q15
// test layer leans on: for surfaces whose cells live on a single
// power-of-two grid (every surface QuantiseSurface itself emits does),
// QuantiseSurface∘Float is the identity on the Q15 words, the exponent
// and the gain — across dense and alpha-pruned geometries, extents and
// exponents well below and above unity.
func TestQSurfaceRoundTripExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	geoms := []struct {
		name   string
		m      int
		alphas []int
	}{
		{"dense-m2", 2, nil},
		{"dense-m16", 16, nil},
		{"dense-m64", 64, nil},
		{"pruned-m16", 16, []int{-11, -3, 0, 3, 11}},
		{"pruned-m64", 64, []int{0, 17, 40, 63}},
	}
	for _, g := range geoms {
		for _, exp := range []int{-40, -7, 0, 1, 13, 40} {
			ref := roundTripSurface(rng, g.m, g.alphas, exp)
			q := QuantiseSurface(ref)
			if q.Exp != exp {
				t.Fatalf("%s exp=%d: QuantiseSurface chose exponent %d", g.name, exp, q.Exp)
			}
			q2 := QuantiseSurface(q.Float())
			if ok, diff := q.Equal(q2); !ok {
				t.Errorf("%s exp=%d: QuantiseSurface(Float(q)) != q: %s", g.name, exp, diff)
			}
			// And Float itself is exact: each cell reconstructs the
			// original grid value with zero error.
			f := q.Float()
			for ai, row := range f.Data {
				for fi, v := range row {
					if v != ref.Data[ai][fi] {
						t.Fatalf("%s exp=%d: Float cell (%d,%d) = %v, want exactly %v",
							g.name, exp, ai, fi, v, ref.Data[ai][fi])
					}
				}
			}
		}
	}
}

// TestQSurfaceRoundTripZero pins the degenerate case: an all-zero
// surface quantises to the zero QSurface (exponent 0) and converts back
// to exactly zero.
func TestQSurfaceRoundTripZero(t *testing.T) {
	q := QuantiseSurface(NewSurface(8))
	if q.Exp != 0 {
		t.Fatalf("zero surface exponent %d", q.Exp)
	}
	for _, row := range q.Float().Data {
		for _, v := range row {
			if v != 0 {
				t.Fatalf("zero surface converts to %v", v)
			}
		}
	}
	if ok, diff := q.Equal(QuantiseSurface(q.Float())); !ok {
		t.Errorf("zero surface round trip: %s", diff)
	}
}

// TestQSurfaceGainExactness checks the residual Gain factor carries
// through Float with no rounding of its own: scaling a QSurface's gain
// by an exactly-representable factor scales every converted cell by
// exactly that factor.
func TestQSurfaceGainExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	q := QuantiseSurface(roundTripSurface(rng, 16, nil, 3))
	base := q.Float()
	for _, gain := range []float64{0.5, 0.25, 3, 1.0 / 64} {
		scaled := &QSurface{M: q.M, Exp: q.Exp, Gain: q.Gain * gain, Alphas: q.Alphas, Data: q.Data}
		f := scaled.Float()
		for ai, row := range f.Data {
			for fi, v := range row {
				if want := base.Data[ai][fi] * complex(gain, 0); v != want {
					t.Fatalf("gain %v: cell (%d,%d) = %v, want exactly %v", gain, ai, fi, v, want)
				}
			}
		}
	}
}
