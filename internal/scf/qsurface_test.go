package scf

import (
	"math"
	"math/cmplx"
	"testing"

	"tiledcfd/internal/fixed"
)

// TestQSurfaceRoundTrip: float → Q15 → float must preserve every cell to
// within one LSB at the surface's block scale.
func TestQSurfaceRoundTrip(t *testing.T) {
	s := NewSurface(5)
	for ai, row := range s.Data {
		for fi := range row {
			row[fi] = complex(float64(ai-4)*0.37e-3, float64(fi-4)*-0.11e-3)
		}
	}
	q := QuantiseSurface(s)
	back := q.Float()
	// One Q15 LSB at the chosen exponent.
	lsb := math.Ldexp(1.0/32768, q.Exp) * q.Gain
	worst := MaxAbsDiff(s, back)
	if worst > 1.5*lsb {
		t.Errorf("round-trip error %g exceeds 1.5 LSB (%g)", worst, lsb)
	}
	// The peak must use the top half of the Q15 range.
	peak := fixed.Q15(0)
	for _, row := range q.Data {
		for _, c := range row {
			if a := fixed.Abs(c.Re); a > peak {
				peak = a
			}
			if a := fixed.Abs(c.Im); a > peak {
				peak = a
			}
		}
	}
	if peak < 16384 {
		t.Errorf("quantised peak %d below half scale — exponent wastes headroom", peak)
	}
}

// TestQSurfaceZero: an all-zero surface round-trips to all-zero without a
// degenerate exponent.
func TestQSurfaceZero(t *testing.T) {
	q := QuantiseSurface(NewSurface(3))
	for _, row := range q.Float().Data {
		for _, v := range row {
			if v != 0 {
				t.Fatalf("zero surface produced %v", v)
			}
		}
	}
	if q.Saturated() != 0 {
		t.Errorf("zero surface reports %d saturated cells", q.Saturated())
	}
}

// TestQSurfaceEqual covers the bit-compare diagnostics.
func TestQSurfaceEqual(t *testing.T) {
	a := NewQSurface(3)
	b := NewQSurface(3)
	if ok, _ := a.Equal(b); !ok {
		t.Fatal("identical surfaces unequal")
	}
	b.Exp = 2
	if ok, diff := a.Equal(b); ok || diff == "" {
		t.Error("exponent difference not reported")
	}
	b.Exp = 0
	b.Data[1][1] = fixed.Complex{Re: 1}
	if ok, diff := a.Equal(b); ok || diff == "" {
		t.Error("cell difference not reported")
	}
	c := NewQSurface(2)
	if ok, _ := a.Equal(c); ok {
		t.Error("extent mismatch not reported")
	}
}

// TestQSurfaceFloatScale: Float must apply 2^Exp·Gain exactly.
func TestQSurfaceFloatScale(t *testing.T) {
	q := NewQSurface(2)
	q.Exp = 3
	q.Gain = 0.25
	q.Data[1][1] = fixed.Complex{Re: fixed.HalfQ15, Im: -fixed.HalfQ15}
	got := q.Float().At(0, 0)
	want := complex(0.5*8*0.25, -0.5*8*0.25)
	if cmplx.Abs(got-want) > 1e-15 {
		t.Errorf("Float cell = %v, want %v", got, want)
	}
}
