package scf

import (
	"testing"

	"tiledcfd/internal/fixed"
	"tiledcfd/internal/sig"
)

func benchSignal(b *testing.B, n int) []complex128 {
	b.Helper()
	rng := sig.NewRand(7)
	return sig.Samples(&sig.WGN{Sigma: 0.4, Real: true, Rng: rng}, n)
}

func BenchmarkComputePaperGrid(b *testing.B) {
	p := Params{K: 256, M: 64, Blocks: 1}
	x := benchSignal(b, p.WithDefaults().SamplesNeeded())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Compute(x, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComputeFixedPaperGrid(b *testing.B) {
	p := Params{K: 256, M: 64, Blocks: 1}
	x := fixed.FromFloatSlice(benchSignal(b, p.WithDefaults().SamplesNeeded()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeFixed(x, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComputeDirectSmall(b *testing.B) {
	p := Params{K: 16, M: 4, Blocks: 1}
	x := benchSignal(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeDirect(x, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlphaProfile(b *testing.B) {
	p := Params{K: 256, M: 64, Blocks: 1}
	x := benchSignal(b, p.WithDefaults().SamplesNeeded())
	s, _, err := Compute(x, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AlphaProfile()
	}
}
