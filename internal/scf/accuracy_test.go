package scf

import (
	"testing"

	"tiledcfd/internal/fixed"
	"tiledcfd/internal/sig"
)

// strongTone returns a near-full-scale real tone: the worst case for
// accumulator headroom because its feature cells accumulate coherently.
func strongTone(k, blocks int) []complex128 {
	x := sig.Samples(&sig.Tone{Amp: 0.95, Freq: 4.0 / float64(k), Real: true}, k*blocks)
	return x
}

func TestMeasureFixedAccuracyModerate(t *testing.T) {
	// At few blocks and half-scale input the Q15 path tracks the float
	// reference to well under 2% of the PSD peak.
	const k, m, blocks = 64, 16, 4
	rng := sig.NewRand(41)
	x := sig.Samples(&sig.WGN{Sigma: 0.35, Real: true, Rng: rng}, k*blocks)
	rep, err := MeasureFixedAccuracy(x, Params{K: k, M: m, Blocks: blocks})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SaturatedCells != 0 {
		t.Fatalf("unexpected saturation: %d cells", rep.SaturatedCells)
	}
	if rep.WorstRelToPeak > 0.02 {
		t.Fatalf("worst error %.4f of peak, want < 2%%", rep.WorstRelToPeak)
	}
	if rep.Blocks != blocks {
		t.Fatalf("report blocks %d", rep.Blocks)
	}
}

func TestLongIntegrationSaturatesWithoutPrescale(t *testing.T) {
	// The section 4.1 headroom limit made visible: a strong coherent tone
	// accumulated over many blocks pins the feature cells at full scale
	// in plain Q15 accumulation...
	const k, m, blocks = 64, 8, 64
	p := Params{K: k, M: m, Blocks: blocks}
	x := fixed.FromFloatSlice(strongTone(k, blocks))
	plain, err := ComputeFixed(x, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := CountSaturatedCells(plain); got == 0 {
		t.Fatal("expected saturated cells in 64-block full-scale accumulation")
	}
	// ...while prescaling by log2(blocks) bits keeps every cell in range.
	spectra, err := FixedSpectra(x, p)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := AccumulateFixedPrescaled(spectra, p, 6) // 2^6 = 64
	if err != nil {
		t.Fatal(err)
	}
	if got := CountSaturatedCells(scaled); got != 0 {
		t.Fatalf("prescaled accumulation still saturates: %d cells", got)
	}
	// And the prescaled surface still peaks at a tone cell. A real tone at
	// bin 4 has four equal-magnitude cells: the PSD pair (f=±4, a=0) and
	// the doubled-carrier pair (f=0, a=±4).
	f, a, _ := scaled.Float(0).MaxFeature(false)
	ok := (a == 0 && (f == 4 || f == -4)) || (f == 0 && (a == 4 || a == -4))
	if !ok {
		t.Fatalf("prescaled peak at (f=%d,a=%d), want one of (±4,0)/(0,±4)", f, a)
	}
}

func TestPrescaleZeroMatchesPlain(t *testing.T) {
	const k, m, blocks = 32, 8, 3
	p := Params{K: k, M: m, Blocks: blocks}
	rng := sig.NewRand(43)
	x := fixed.FromFloatSlice(sig.Samples(&sig.WGN{Sigma: 0.4, Rng: rng}, k*blocks))
	spectra, err := FixedSpectra(x, p)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := AccumulateFixed(spectra, p)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := AccumulateFixedPrescaled(spectra, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok, diag := plain.Equal(zero); !ok {
		t.Fatalf("shift=0 differs from plain accumulation: %s", diag)
	}
}

func TestPrescaleValidation(t *testing.T) {
	p := Params{K: 32, M: 8, Blocks: 1}
	if _, err := AccumulateFixedPrescaled(nil, Params{K: 20, M: 4, Blocks: 1, Hop: 20}, 1); err == nil {
		t.Error("bad params should fail")
	}
	if _, err := AccumulateFixedPrescaled([][]fixed.Complex{make([]fixed.Complex, 8)}, p, 1); err == nil {
		t.Error("wrong spectrum length should fail")
	}
	if _, err := AccumulateFixedPrescaled(nil, p, 15); err == nil {
		t.Error("shift > 14 should fail")
	}
}

func TestMeasureFixedAccuracyErrors(t *testing.T) {
	if _, err := MeasureFixedAccuracy(make([]complex128, 4), Params{K: 64, M: 16}); err == nil {
		t.Error("short input should fail")
	}
	if _, err := MeasureFixedAccuracy(make([]complex128, 64), Params{K: 64, M: 16, Blocks: 1}); err == nil {
		t.Error("zero-power input should fail")
	}
}
