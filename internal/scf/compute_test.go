package scf

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"tiledcfd/internal/sig"
)

func TestComputeComplexToneOnlyPSDFeature(t *testing.T) {
	// A complex exponential at bin b has a single spectral line, so the
	// only non-zero DSCF cells are on the a=0 (PSD) row at f=b.
	const k, m, bin = 64, 8, 5
	x := sig.Samples(&sig.Tone{Amp: 1, Freq: float64(bin) / k}, k)
	s, _, err := Compute(x, Params{K: k, M: m})
	if err != nil {
		t.Fatal(err)
	}
	for a := -(m - 1); a <= m-1; a++ {
		for f := -(m - 1); f <= m-1; f++ {
			mag := cmplx.Abs(s.At(f, a))
			if f == bin && a == 0 {
				if mag < float64(k*k)/2 {
					t.Fatalf("PSD feature at (f=%d,a=0) magnitude %v too small", bin, mag)
				}
			} else if mag > 1e-6 {
				t.Fatalf("unexpected feature at (f=%d,a=%d): %v", f, a, mag)
			}
		}
	}
}

func TestComputeRealToneDoubledCarrierFeature(t *testing.T) {
	// A real cosine at bin b has lines at ±b, so the DSCF gains features at
	// (f=0, a=±b): the doubled-carrier cycle frequency α=2·f_c that CFD
	// detectors exploit (the paper's reference [2]).
	const k, m, bin = 64, 8, 4
	x := sig.Samples(&sig.Tone{Amp: 1, Freq: float64(bin) / k, Real: true}, k)
	s, _, err := Compute(x, Params{K: k, M: m})
	if err != nil {
		t.Fatal(err)
	}
	featPlus := cmplx.Abs(s.At(0, bin))
	featMinus := cmplx.Abs(s.At(0, -bin))
	psd := cmplx.Abs(s.At(bin, 0))
	if featPlus < psd/2-1e-9 || featMinus < psd/2-1e-9 {
		t.Fatalf("doubled-carrier features too small: %v/%v vs PSD %v", featPlus, featMinus, psd)
	}
	// Blind feature search (excluding a=0) must find exactly that offset.
	_, a, _ := s.MaxFeature(true)
	if a != bin && a != -bin {
		t.Fatalf("MaxFeature found a=%d, want ±%d", a, bin)
	}
}

func TestComputeMatchesDirectNonOverlapping(t *testing.T) {
	const k, m, blocks = 16, 4, 3
	rng := sig.NewRand(21)
	x := sig.Samples(&sig.WGN{Sigma: 0.7, Rng: rng}, k*blocks)
	p := Params{K: k, M: m, Blocks: blocks, Hop: k}
	got, _, err := Compute(x, p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ComputeDirect(x, p)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("fft-accumulation vs direct differ by %v", d)
	}
}

func TestComputeMatchesDirectOverlapping(t *testing.T) {
	// Hop < K engages the absolute-time phase reference; the direct form
	// has it built in. Agreement here proves the rotation is right.
	const k, m, blocks, hop = 16, 4, 4, 4
	rng := sig.NewRand(22)
	x := sig.Samples(&sig.WGN{Sigma: 0.7, Rng: rng}, k+(blocks-1)*hop)
	p := Params{K: k, M: m, Blocks: blocks, Hop: hop}
	got, _, err := Compute(x, p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ComputeDirect(x, p)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("overlapping-blocks phase reference wrong: diff %v", d)
	}
}

func TestComputeCoherentAccumulation(t *testing.T) {
	// The doubled-carrier feature of a real tone adds coherently across
	// blocks: after N blocks the normalised magnitude equals the 1-block
	// magnitude, while for noise it shrinks like 1/sqrt(N).
	const k, m, bin = 64, 8, 4
	one := sig.Samples(&sig.Tone{Amp: 1, Freq: float64(bin) / k, Real: true}, k)
	many := sig.Samples(&sig.Tone{Amp: 1, Freq: float64(bin) / k, Real: true}, k*8)
	s1, _, err := Compute(one, Params{K: k, M: m, Blocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	s8, _, err := Compute(many, Params{K: k, M: m, Blocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	f1 := cmplx.Abs(s1.At(0, bin))
	f8 := cmplx.Abs(s8.At(0, bin))
	if math.Abs(f1-f8)/f1 > 1e-6 {
		t.Fatalf("tone feature not coherent across blocks: %v vs %v", f1, f8)
	}
}

func TestComputeStatsCounts(t *testing.T) {
	// Paper section 2: for a 256-point spectrum the DSCF takes ~16x the
	// complex multiplications of the FFT itself.
	x := make([]complex128, 512)
	for i := range x {
		x[i] = complex(math.Sin(0.05*float64(i)), 0)
	}
	_, stats, err := Compute(x, Params{K: 256, M: 64, Blocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FFTMults != 2*1024 {
		t.Fatalf("FFTMults = %d, want 2048", stats.FFTMults)
	}
	if stats.DSCFMults != 2*16129 {
		t.Fatalf("DSCFMults = %d, want 32258", stats.DSCFMults)
	}
	r := stats.Ratio()
	if r < 15 || r > 16 {
		t.Fatalf("DSCF/FFT mult ratio %v, want ~15.75 (paper: 16x)", r)
	}
}

func TestComputeInputValidation(t *testing.T) {
	if _, _, err := Compute(make([]complex128, 10), Params{K: 64, M: 8}); err == nil {
		t.Error("short input should fail")
	}
	if _, _, err := Compute(make([]complex128, 100), Params{K: 100, M: 8, Blocks: 1, Hop: 100}); err == nil {
		t.Error("non-pow2 K should fail")
	}
	if _, err := ComputeDirect(make([]complex128, 4), Params{K: 16, M: 4}); err == nil {
		t.Error("direct short input should fail")
	}
	if _, err := ComputeDirect(make([]complex128, 16), Params{K: 16, M: 9, Blocks: 1, Hop: 16}); err == nil {
		t.Error("direct invalid grid should fail")
	}
}

func TestSpectrumAt(t *testing.T) {
	const k = 32
	x := sig.Samples(&sig.Tone{Amp: 1, Freq: 3.0 / k}, 2*k)
	spec, err := SpectrumAt(x, k, Params{K: k, M: 8})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(spec[3]) < k-1e-6 {
		t.Fatalf("spectrum bin 3 = %v, want magnitude %d", spec[3], k)
	}
	if _, err := SpectrumAt(x, 2*k, Params{K: k, M: 8}); err == nil {
		t.Error("out-of-range block should fail")
	}
	if _, err := SpectrumAt(x, -1, Params{K: k, M: 8}); err == nil {
		t.Error("negative start should fail")
	}
}

// Property: the DSCF is Hermitian in a: S_f^{-a} == conj(S_f^a).
func TestQuickHermitianSymmetry(t *testing.T) {
	f := func(seed uint64, realSig bool) bool {
		const k, m = 16, 4
		rng := sig.NewRand(seed)
		x := sig.Samples(&sig.WGN{Sigma: 0.5, Real: realSig, Rng: rng}, 3*k)
		s, _, err := Compute(x, Params{K: k, M: m, Blocks: 3})
		if err != nil {
			return false
		}
		return s.HermitianError() < 1e-10*(1+s.TotalEnergy())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: scaling the input by g scales the whole surface by g².
func TestQuickQuadraticScaling(t *testing.T) {
	f := func(seed uint64, g8 uint8) bool {
		const k, m = 16, 4
		g := 0.25 + float64(g8)/256.0
		rng := sig.NewRand(seed)
		x := sig.Samples(&sig.WGN{Sigma: 0.3, Rng: rng}, k)
		y := make([]complex128, len(x))
		for i := range x {
			y[i] = x[i] * complex(g, 0)
		}
		sx, _, err := Compute(x, Params{K: k, M: m})
		if err != nil {
			return false
		}
		sy, _, err := Compute(y, Params{K: k, M: m})
		if err != nil {
			return false
		}
		for a := -(m - 1); a <= m-1; a++ {
			for f2 := -(m - 1); f2 <= m-1; f2++ {
				want := sx.At(f2, a) * complex(g*g, 0)
				if cmplx.Abs(sy.At(f2, a)-want) > 1e-9*(1+cmplx.Abs(want)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
