package scf

import (
	"reflect"
	"testing"

	"tiledcfd/internal/sig"
)

var _ Estimator = Direct{}

func estimatorBand(t *testing.T, n int) []complex128 {
	t.Helper()
	rng := sig.NewRand(5)
	b := &sig.BPSK{Amp: 1, Carrier: 8.0 / 64, SymbolLen: 8, Rng: rng}
	x := sig.Samples(b, n)
	y, _, err := sig.AddAWGN(x, 10, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	return y
}

func TestDirectEstimatorMatchesCompute(t *testing.T) {
	p := Params{K: 64, M: 16, Blocks: 8}
	x := estimatorBand(t, p.WithDefaults().SamplesNeeded())
	want, wantStats, err := Compute(x, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 4} {
		e := Direct{Params: p, Workers: workers}
		got, gotStats, err := e.Estimate(x)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if d := MaxAbsDiff(want, got); d != 0 {
			t.Errorf("workers=%d: surface differs from Compute by %g (want bit-identical)", workers, d)
		}
		if !reflect.DeepEqual(gotStats, wantStats) {
			t.Errorf("workers=%d: stats %+v != Compute's %+v", workers, gotStats, wantStats)
		}
	}
	if got := (Direct{}).Name(); got != "direct" {
		t.Errorf("Name() = %q", got)
	}
}

func TestDirectEstimatorPropagatesErrors(t *testing.T) {
	e := Direct{Params: Params{K: 64, M: 16, Blocks: 8}}
	if _, _, err := e.Estimate(make([]complex128, 10)); err == nil {
		t.Error("short input should fail")
	}
	e.Params.K = 63
	if _, _, err := e.Estimate(make([]complex128, 1024)); err == nil {
		t.Error("non-power-of-two K should fail")
	}
}

func TestStatsTotalMults(t *testing.T) {
	s := Stats{FFTMults: 100, DSCFMults: 1600}
	if got := s.TotalMults(); got != 1700 {
		t.Fatalf("TotalMults = %d, want 1700", got)
	}
}
