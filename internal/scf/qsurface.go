package scf

import (
	"fmt"
	"math"

	"tiledcfd/internal/fixed"
)

// QSurface is a spectral-correlation surface held in Q15 words with one
// block-floating-point exponent and an exact residual gain — the output
// format of the fam-q15/ssca-q15 backends. The float-path value of a cell
// is
//
//	Data[...].Complex128() · 2^Exp · Gain
//
// so Float() converts exactly into the units of the corresponding float
// estimator. Data and Exp are the bit-exact part (identical across runs
// and Workers settings); Gain is a deterministic power-of-two-and-integer
// factor (1/smoothing-length, 1/backoff²).
type QSurface struct {
	// M is the grid half-extent.
	M int
	// Exp is the power-of-two exponent every cell carries.
	Exp int
	// Gain is the residual scalar factor (exactly representable).
	Gain float64
	// Alphas, when non-nil, lists the row offsets the surface holds
	// (alpha-candidate pruning), strictly ascending; Data[i] is the row
	// for a = Alphas[i]. Nil means dense: Data[a+M-1]. Note the
	// surface-level exponent is derived from the computed cells, so a
	// pruned Q15 surface is bit-exact deterministic and converts exactly
	// via Float, but its raw words need not match a full-plane run's
	// (whose peak may live on a row the pruned run never computes).
	Alphas []int
	// Data holds the Q15 cells, one row per held offset, indexed
	// Data[rowIndex][f+M-1].
	Data [][]fixed.Complex
}

// NewQSurface allocates a zeroed Q15 surface for half-extent M with unit
// gain.
func NewQSurface(m int) *QSurface {
	n := 2*m - 1
	data := make([][]fixed.Complex, n)
	cells := make([]fixed.Complex, n*n)
	for i := range data {
		data[i], cells = cells[:n], cells[n:]
	}
	return &QSurface{M: m, Gain: 1, Data: data}
}

// NewSparseQSurface allocates a zeroed alpha-pruned Q15 surface holding
// only the rows in alphas (NewSparseSurface semantics), with unit gain.
func NewSparseQSurface(m int, alphas []int) *QSurface {
	n := 2*m - 1
	held := append([]int(nil), alphas...)
	data := make([][]fixed.Complex, len(held))
	cells := make([]fixed.Complex, len(held)*n)
	for i := range data {
		data[i], cells = cells[:n], cells[n:]
	}
	return &QSurface{M: m, Gain: 1, Alphas: held, Data: data}
}

// rowIndex returns the Data index of row a, or -1 when absent.
func (s *QSurface) rowIndex(a int) int {
	if s.Alphas == nil {
		if a < -(s.M-1) || a > s.M-1 {
			return -1
		}
		return a + s.M - 1
	}
	for i, v := range s.Alphas {
		if v == a {
			return i
		}
	}
	return -1
}

// alphaOf returns the offset a of Data row i.
func (s *QSurface) alphaOf(i int) int {
	if s.Alphas == nil {
		return i - (s.M - 1)
	}
	return s.Alphas[i]
}

// At returns the raw Q15 cell S_f^a; it panics on a row the surface
// does not hold (programming error).
func (s *QSurface) At(f, a int) fixed.Complex {
	i := s.rowIndex(a)
	if i < 0 {
		panic(fmt.Sprintf("scf: QSurface.At(%d,%d) outside ±%d or pruned away", f, a, s.M-1))
	}
	return s.Data[i][f+s.M-1]
}

// Float converts the surface into float-path units: every cell becomes
// Complex128()·2^Exp·Gain. The conversion is exact (powers of two and the
// Gain factor carry no rounding of their own). A pruned Q15 surface
// converts into an equally pruned float Surface.
func (s *QSurface) Float() *Surface {
	var out *Surface
	if s.Alphas != nil {
		out = NewSparseSurface(s.M, s.Alphas)
	} else {
		out = NewSurface(s.M)
	}
	g := complex(math.Ldexp(s.Gain, s.Exp), 0)
	for ai, row := range s.Data {
		for fi, c := range row {
			out.Data[ai][fi] = c.Complex128() * g
		}
	}
	return out
}

// Equal reports whether two Q15 surfaces are bit-identical (cells and
// exponent; Gain compared exactly), returning the first difference for
// diagnostics. It is the check the determinism tests apply across runs
// and Workers settings.
func (s *QSurface) Equal(o *QSurface) (bool, string) {
	if s.M != o.M {
		return false, fmt.Sprintf("extent %d vs %d", s.M, o.M)
	}
	if s.Exp != o.Exp {
		return false, fmt.Sprintf("exponent %d vs %d", s.Exp, o.Exp)
	}
	if s.Gain != o.Gain {
		return false, fmt.Sprintf("gain %v vs %v", s.Gain, o.Gain)
	}
	if len(s.Data) != len(o.Data) {
		return false, fmt.Sprintf("row count %d vs %d", len(s.Data), len(o.Data))
	}
	for ai := range s.Data {
		if s.alphaOf(ai) != o.alphaOf(ai) {
			return false, fmt.Sprintf("row %d holds a=%d vs a=%d", ai, s.alphaOf(ai), o.alphaOf(ai))
		}
		for fi := range s.Data[ai] {
			if s.Data[ai][fi] != o.Data[ai][fi] {
				return false, fmt.Sprintf("cell a=%d f=%d: %+v vs %+v",
					s.alphaOf(ai), fi-(s.M-1), s.Data[ai][fi], o.Data[ai][fi])
			}
		}
	}
	return true, ""
}

// Saturated counts cells pinned at the positive or negative rail in
// either component — after the surface-level renormalisation at most the
// peak cell should ever sit there.
func (s *QSurface) Saturated() int {
	n := 0
	for _, row := range s.Data {
		for _, c := range row {
			if c.Re == fixed.MaxQ15 || c.Re == fixed.MinQ15 ||
				c.Im == fixed.MaxQ15 || c.Im == fixed.MinQ15 {
				n++
			}
		}
	}
	return n
}

// QuantiseSurface converts a float surface into the Q15+exponent form:
// the peak component picks a power-of-two exponent that lands it in the
// top half of the Q15 range, and every cell is rounded at that scale.
// It is the float→fixed direction of the conversion pair (Float is the
// other), used to push float reference surfaces through fixed-point
// post-processing paths.
func QuantiseSurface(s *Surface) *QSurface {
	var out *QSurface
	if s.Alphas != nil {
		out = NewSparseQSurface(s.M, s.Alphas)
	} else {
		out = NewQSurface(s.M)
	}
	peak := 0.0
	for _, row := range s.Data {
		for _, v := range row {
			if r := math.Abs(real(v)); r > peak {
				peak = r
			}
			if im := math.Abs(imag(v)); im > peak {
				peak = im
			}
		}
	}
	if peak == 0 {
		return out
	}
	// Choose exp so peak/2^exp lies in [0.5, 1): full use of the Q15 word.
	_, e := math.Frexp(peak)
	out.Exp = e
	inv := math.Ldexp(1, -e)
	for ai, row := range s.Data {
		for fi, v := range row {
			out.Data[ai][fi] = fixed.CFromFloat(complex(real(v)*inv, imag(v)*inv))
		}
	}
	return out
}
