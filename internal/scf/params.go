package scf

import (
	"fmt"
	"math"
	"sort"

	"tiledcfd/internal/fft"
)

// Params configures a DSCF computation.
type Params struct {
	// K is the FFT size (a power of two). The paper uses 256.
	K int
	// M sets the grid half-extent: f and a range over [-(M-1), +(M-1)],
	// giving a (2M-1)x(2M-1) surface. The paper uses M = 64 (127x127).
	// The extreme bins addressed are f±a in [-2(M-1), +2(M-1)], which must
	// stay within half the FFT range to remain unambiguous: 2(M-1) <= K/2.
	M int
	// Blocks is N, the number of K-sample integration steps accumulated.
	Blocks int
	// Hop is the block advance in samples; 0 means K (non-overlapping,
	// as in the paper's section 4.1).
	Hop int
	// Window is the analysis window; the paper's expression 2 implies
	// Rectangular, the default.
	Window fft.WindowKind
	// AlphaCandidates, when non-empty, restricts estimation to a set of
	// candidate cycle-frequency rows — directed sensing for a known
	// modulation, where the caller knows which α it cares about (symbol
	// rate, 2·carrier). Each entry is a non-negative row offset a in
	// [0, M-1]; the Hermitian mirror row -a is implied, and the a=0 PSD
	// row is always computed (detectors normalise against it). Estimators
	// honouring the set produce a sparse Surface holding only those rows,
	// bit-identical on them to the full-plane computation. Empty means
	// the full (α, f) plane. Use AlphaBinForHz to build entries from
	// physical cycle frequencies.
	AlphaCandidates []int
}

// WithDefaults returns a copy of p with zero fields replaced by the
// paper's defaults (K=256, M=K/4, Blocks=1, Hop=K).
func (p Params) WithDefaults() Params {
	if p.K == 0 {
		p.K = 256
	}
	if p.M == 0 {
		p.M = p.K / 4
	}
	if p.Blocks == 0 {
		p.Blocks = 1
	}
	if p.Hop == 0 {
		p.Hop = p.K
	}
	return p
}

// Validate checks the parameter set for consistency.
func (p Params) Validate() error {
	if !fft.IsPow2(p.K) || p.K < 4 {
		return fmt.Errorf("scf: K=%d must be a power of two >= 4", p.K)
	}
	if p.M < 1 {
		return fmt.Errorf("scf: M=%d must be >= 1", p.M)
	}
	if 2*(p.M-1) > p.K/2 {
		return fmt.Errorf("scf: grid extent 2(M-1)=%d exceeds K/2=%d", 2*(p.M-1), p.K/2)
	}
	if p.Blocks < 1 {
		return fmt.Errorf("scf: Blocks=%d must be >= 1", p.Blocks)
	}
	if p.Hop < 1 {
		return fmt.Errorf("scf: Hop=%d must be >= 1", p.Hop)
	}
	seen := make(map[int]bool, len(p.AlphaCandidates))
	for _, a := range p.AlphaCandidates {
		if a < 0 || a > p.M-1 {
			return fmt.Errorf("scf: alpha candidate a=%d outside [0, %d]", a, p.M-1)
		}
		if seen[a] {
			return fmt.Errorf("scf: duplicate alpha candidate a=%d", a)
		}
		seen[a] = true
	}
	return nil
}

// Pruned reports whether estimation is restricted to candidate
// cycle-frequency rows.
func (p Params) Pruned() bool { return len(p.AlphaCandidates) > 0 }

// CandidateRows returns the sorted a >= 0 rows a pruned estimator
// computes before Hermitian mirroring: the candidate set plus the a=0
// PSD row. Nil when not pruned.
func (p Params) CandidateRows() []int {
	if !p.Pruned() {
		return nil
	}
	rows := make([]int, 0, len(p.AlphaCandidates)+1)
	rows = append(rows, p.AlphaCandidates...)
	sort.Ints(rows)
	if rows[0] != 0 {
		rows = append([]int{0}, rows...)
	}
	return rows
}

// SurfaceAlphas returns the sorted full row set of a pruned surface —
// every candidate, its Hermitian mirror, and a=0. Nil when not pruned.
func (p Params) SurfaceAlphas() []int {
	pos := p.CandidateRows()
	if pos == nil {
		return nil
	}
	alphas := make([]int, 0, 2*len(pos))
	for i := len(pos) - 1; i >= 1; i-- {
		alphas = append(alphas, -pos[i])
	}
	return append(alphas, pos...)
}

// PrunedCellsSkipped returns how many grid cells one pruned snapshot
// avoids computing relative to the full (2M-1)² plane — the quantity
// the serving stack counts as cfd_pruned_cells_skipped_total. Zero when
// not pruned.
func (p Params) PrunedCellsSkipped() int64 {
	if !p.Pruned() {
		return 0
	}
	return int64(p.P()-len(p.SurfaceAlphas())) * int64(p.F())
}

// AlphaBinForHz converts a physical cycle frequency to its grid row
// offset: cell (f, a) correlates bins f+a and f-a, whose separation is
// the cycle frequency α = 2a·fs/K, so a = round(α·K/(2·fs)). It errors
// when the rounded row falls outside the candidate range [0, M-1] of
// the (defaulted) geometry.
func (p Params) AlphaBinForHz(alphaHz, sampleRateHz float64) (int, error) {
	if sampleRateHz <= 0 {
		return 0, fmt.Errorf("scf: sample rate %g Hz must be positive", sampleRateHz)
	}
	d := p.WithDefaults()
	a := int(math.Round(alphaHz * float64(d.K) / (2 * sampleRateHz)))
	if a < 0 || a > d.M-1 {
		return 0, fmt.Errorf("scf: cycle frequency %g Hz maps to row a=%d outside [0, %d] (fs=%g Hz, K=%d)",
			alphaHz, a, d.M-1, sampleRateHz, d.K)
	}
	return a, nil
}

// P returns the number of frequency offsets (and of initial-array
// processors in the paper's mapping): 2M-1.
func (p Params) P() int { return 2*p.M - 1 }

// F returns the number of frequencies per offset: 2M-1.
func (p Params) F() int { return 2*p.M - 1 }

// SamplesNeeded returns the input length required for Blocks integration
// steps.
func (p Params) SamplesNeeded() int {
	return p.K + (p.Blocks-1)*p.Hop
}

// DSCFMults returns the number of complex multiplications one integration
// step of the DSCF performs on the (2M-1)² grid. For M = K/4 this is
// (K/2-1)² ≈ ¼K², the paper's section 2 count. With alpha candidates
// set it counts only the rows the pruned surface holds.
func (p Params) DSCFMults() int {
	if p.Pruned() {
		return len(p.SurfaceAlphas()) * p.F()
	}
	return p.P() * p.F()
}

// QuarterNSquared returns the paper's idealised ¼K² complex-multiplication
// count for comparison with DSCFMults.
func (p Params) QuarterNSquared() int { return p.K * p.K / 4 }
