package scf

import (
	"fmt"

	"tiledcfd/internal/fft"
)

// Params configures a DSCF computation.
type Params struct {
	// K is the FFT size (a power of two). The paper uses 256.
	K int
	// M sets the grid half-extent: f and a range over [-(M-1), +(M-1)],
	// giving a (2M-1)x(2M-1) surface. The paper uses M = 64 (127x127).
	// The extreme bins addressed are f±a in [-2(M-1), +2(M-1)], which must
	// stay within half the FFT range to remain unambiguous: 2(M-1) <= K/2.
	M int
	// Blocks is N, the number of K-sample integration steps accumulated.
	Blocks int
	// Hop is the block advance in samples; 0 means K (non-overlapping,
	// as in the paper's section 4.1).
	Hop int
	// Window is the analysis window; the paper's expression 2 implies
	// Rectangular, the default.
	Window fft.WindowKind
}

// WithDefaults returns a copy of p with zero fields replaced by the
// paper's defaults (K=256, M=K/4, Blocks=1, Hop=K).
func (p Params) WithDefaults() Params {
	if p.K == 0 {
		p.K = 256
	}
	if p.M == 0 {
		p.M = p.K / 4
	}
	if p.Blocks == 0 {
		p.Blocks = 1
	}
	if p.Hop == 0 {
		p.Hop = p.K
	}
	return p
}

// Validate checks the parameter set for consistency.
func (p Params) Validate() error {
	if !fft.IsPow2(p.K) || p.K < 4 {
		return fmt.Errorf("scf: K=%d must be a power of two >= 4", p.K)
	}
	if p.M < 1 {
		return fmt.Errorf("scf: M=%d must be >= 1", p.M)
	}
	if 2*(p.M-1) > p.K/2 {
		return fmt.Errorf("scf: grid extent 2(M-1)=%d exceeds K/2=%d", 2*(p.M-1), p.K/2)
	}
	if p.Blocks < 1 {
		return fmt.Errorf("scf: Blocks=%d must be >= 1", p.Blocks)
	}
	if p.Hop < 1 {
		return fmt.Errorf("scf: Hop=%d must be >= 1", p.Hop)
	}
	return nil
}

// P returns the number of frequency offsets (and of initial-array
// processors in the paper's mapping): 2M-1.
func (p Params) P() int { return 2*p.M - 1 }

// F returns the number of frequencies per offset: 2M-1.
func (p Params) F() int { return 2*p.M - 1 }

// SamplesNeeded returns the input length required for Blocks integration
// steps.
func (p Params) SamplesNeeded() int {
	return p.K + (p.Blocks-1)*p.Hop
}

// DSCFMults returns the number of complex multiplications one integration
// step of the DSCF performs on the (2M-1)² grid. For M = K/4 this is
// (K/2-1)² ≈ ¼K², the paper's section 2 count.
func (p Params) DSCFMults() int { return p.P() * p.F() }

// QuarterNSquared returns the paper's idealised ¼K² complex-multiplication
// count for comparison with DSCFMults.
func (p Params) QuarterNSquared() int { return p.K * p.K / 4 }
