package scf

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestSurfaceIndexing(t *testing.T) {
	s := NewSurface(4) // 7x7, f,a in [-3,3]
	if s.Extent() != 7 {
		t.Fatalf("extent = %d", s.Extent())
	}
	s.Add(-3, 3, complex(1, 2))
	if got := s.At(-3, 3); got != complex(1, 2) {
		t.Fatalf("At(-3,3) = %v", got)
	}
	if got := s.At(0, 0); got != 0 {
		t.Fatalf("At(0,0) = %v", got)
	}
	if !s.InRange(3, -3) || s.InRange(4, 0) || s.InRange(0, -4) {
		t.Fatal("InRange wrong")
	}
}

func TestSurfaceAtPanicsOffGrid(t *testing.T) {
	s := NewSurface(2)
	defer func() {
		if recover() == nil {
			t.Error("At off-grid should panic")
		}
	}()
	s.At(2, 0)
}

func TestSurfaceAddPanicsOffGrid(t *testing.T) {
	s := NewSurface(2)
	defer func() {
		if recover() == nil {
			t.Error("Add off-grid should panic")
		}
	}()
	s.Add(0, -2, 1)
}

func TestSurfaceScale(t *testing.T) {
	s := NewSurface(2)
	s.Add(1, 1, complex(2, -4))
	s.Scale(0.5)
	if got := s.At(1, 1); got != complex(1, -2) {
		t.Fatalf("scaled cell = %v", got)
	}
}

func TestAlphaProfile(t *testing.T) {
	s := NewSurface(3)         // a in [-2,2]
	s.Add(0, 2, complex(3, 4)) // |.|=5
	s.Add(1, 2, complex(0, 1)) // |.|=1
	s.Add(0, 0, complex(1, 0))
	prof := s.AlphaProfile()
	if len(prof) != 5 {
		t.Fatalf("profile length %d", len(prof))
	}
	if math.Abs(prof[4]-6) > 1e-12 { // a=+2 row
		t.Fatalf("profile[a=2] = %v, want 6", prof[4])
	}
	if math.Abs(prof[2]-1) > 1e-12 { // a=0 row
		t.Fatalf("profile[a=0] = %v, want 1", prof[2])
	}
	if prof[0] != 0 {
		t.Fatalf("profile[a=-2] = %v, want 0", prof[0])
	}
}

func TestMaxFeature(t *testing.T) {
	s := NewSurface(3)
	s.Add(0, 0, complex(100, 0)) // dominant PSD cell
	s.Add(-1, 2, complex(0, 7))  // cyclic feature
	f, a, mag := s.MaxFeature(false)
	if f != 0 || a != 0 || mag != 100 {
		t.Fatalf("MaxFeature(false) = (%d,%d,%v)", f, a, mag)
	}
	f, a, mag = s.MaxFeature(true)
	if f != -1 || a != 2 || mag != 7 {
		t.Fatalf("MaxFeature(true) = (%d,%d,%v)", f, a, mag)
	}
}

func TestPSDIsACopy(t *testing.T) {
	s := NewSurface(2)
	s.Add(1, 0, complex(5, 0))
	psd := s.PSD()
	if psd[2] != complex(5, 0) { // f=1 -> index 2
		t.Fatalf("PSD = %v", psd)
	}
	psd[2] = 0
	if s.At(1, 0) != complex(5, 0) {
		t.Fatal("PSD must return a copy")
	}
}

func TestHermitianError(t *testing.T) {
	s := NewSurface(2)
	s.Add(1, 1, complex(1, 2))
	s.Add(1, -1, cmplx.Conj(complex(1, 2)))
	if e := s.HermitianError(); e > 1e-15 {
		t.Fatalf("symmetric surface error %v", e)
	}
	s.Add(1, -1, complex(0, 1)) // break symmetry
	if e := s.HermitianError(); math.Abs(e-1) > 1e-12 {
		t.Fatalf("asymmetry %v, want 1", e)
	}
}

func TestMaxAbsDiffPanicsOnExtent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("extent mismatch should panic")
		}
	}()
	MaxAbsDiff(NewSurface(2), NewSurface(3))
}

func TestTotalEnergy(t *testing.T) {
	s := NewSurface(2)
	s.Add(0, 0, complex(3, 4))
	if got := s.TotalEnergy(); math.Abs(got-25) > 1e-12 {
		t.Fatalf("TotalEnergy = %v", got)
	}
}

func TestCoherenceNormalisation(t *testing.T) {
	s := NewSurface(3)
	// PSD floor of 4 at the relevant bins; feature of 4 at (0, 2).
	for f := -2; f <= 2; f++ {
		s.Add(f, 0, complex(4, 0))
	}
	s.Add(0, 2, complex(4, 0))
	c := s.Coherence(0, 2, 0)
	if math.Abs(c-1) > 1e-12 {
		t.Fatalf("coherence = %v, want 1 (fully coherent)", c)
	}
	// Out-of-grid normaliser bins clamp rather than panic.
	c2 := s.Coherence(2, 2, 0)
	if math.IsNaN(c2) || math.IsInf(c2, 0) {
		t.Fatalf("edge coherence = %v", c2)
	}
	// eps floor keeps empty cells finite.
	if got := s.Coherence(1, 1, 1e-9); got != 0 {
		t.Fatalf("empty-cell coherence = %v, want 0", got)
	}
}
