package scf

import (
	"fmt"

	"tiledcfd/internal/fft"
)

// Accumulator is incremental estimator state: the streaming twin of
// Estimator.Estimate. Samples arrive in arbitrarily sized chunks via
// Push; Snapshot materialises the spectral-correlation surface of
// everything pushed so far. The defining contract, enforced by the
// golden equivalence tests, is
//
//	Push(c1); Push(c2); ...; Snapshot()
//	  ==  Estimate(concat(c1, c2, ...))
//
// bit for bit, for every chunking of the same sample sequence. Snapshot
// does not consume state — it may be called repeatedly as more samples
// arrive (the monitoring loop of the stream engine) — and Reset returns
// the accumulator to its freshly constructed state for windowed
// operation.
//
// Accumulators are deliberately NOT safe for concurrent use: each one
// belongs to a single stream (the engine gives every channel its own and
// serialises access); sharing one across goroutines without external
// locking is a race.
type Accumulator interface {
	// Name identifies the underlying estimator ("direct", "fam", "ssca").
	Name() string
	// Push appends a chunk of samples to the stream. Chunks may have any
	// length, including zero; the accumulator buffers what it cannot yet
	// process.
	Push(samples []complex128) error
	// Samples returns the total number of samples pushed since
	// construction or the last Reset.
	Samples() int
	// Ready reports whether enough samples have arrived for Snapshot to
	// succeed.
	Ready() bool
	// Snapshot returns the surface over all samples pushed so far, plus
	// the work statistics the batch path would report for the same
	// input. It fails when too few samples have arrived (see Ready).
	Snapshot() (*Surface, *Stats, error)
	// Reset discards all accumulated state, returning the accumulator to
	// its initial (empty) condition.
	Reset()
}

// StreamingEstimator is an Estimator that can also maintain incremental
// state. All three estimators of this reproduction (Direct, fam.FAM,
// fam.SSCA) implement it.
type StreamingEstimator interface {
	Estimator
	// NewAccumulator returns fresh incremental state for this estimator's
	// configuration.
	NewAccumulator() (Accumulator, error)
}

// NewAccumulator returns incremental state for the direct DSCF with the
// given parameters. Params.Blocks is ignored: the block count is derived
// from the pushed samples (a snapshot after n complete blocks equals
// Compute with Blocks=n). The accumulator holds one unnormalised surface
// plus at most one analysis block of buffered samples, so its memory
// footprint is independent of stream length.
func NewAccumulator(p Params) (Accumulator, error) {
	p = p.WithDefaults()
	p.Blocks = 1 // derived from the stream; 1 keeps Validate happy
	if err := p.Validate(); err != nil {
		return nil, err
	}
	plan, err := fft.PlanFor(p.K)
	if err != nil {
		return nil, err
	}
	var win []float64
	if p.Window != fft.Rectangular {
		if win, err = fft.Window(p.Window, p.K); err != nil {
			return nil, err
		}
	}
	return &directAccumulator{
		p:         p,
		plan:      plan,
		win:       win,
		rows:      p.CandidateRows(),
		alphas:    p.SurfaceAlphas(),
		dscfMults: p.DSCFMults(),
		sum:       NewSurfaceFor(p),
		spec:      make([]complex128, p.K),
		specc:     make([]complex128, p.K),
	}, nil
}

// NewAccumulator implements StreamingEstimator. Workers is ignored: an
// accumulator processes blocks in arrival order on the caller's
// goroutine (streaming parallelism lives across channels, in the stream
// engine's worker pool).
func (e Direct) NewAccumulator() (Accumulator, error) {
	return NewAccumulator(e.Params)
}

var _ StreamingEstimator = Direct{}

// directAccumulator is the incremental direct DSCF. It replays the exact
// per-block pipeline of Compute — window, K-point FFT, absolute-time
// phase reference, conjugate hoist, a>=0-row accumulation — as blocks
// complete, in stream order, so the running sum is always the same
// floating-point value the batch path computes over the concatenated
// samples. Snapshot copies the sum, applies the 1/N normalisation and the
// Hermitian mirror, exactly as Compute does at the end.
type directAccumulator struct {
	p    Params
	plan *fft.Plan
	win  []float64
	rows []int // candidate a >= 0 rows; nil = full plane

	// Snapshot runs once per serving decision, so the row layout and the
	// per-block multiply count are computed once here instead of rebuilt
	// (with their sorts) on every call.
	alphas    []int // full signed row set of the snapshot surface; nil = dense
	dscfMults int

	sum    *Surface // unnormalised; only a >= 0 rows carry data
	blocks int

	// buf holds stream samples not yet folded into a block; buf[0] is
	// absolute sample index bufStart. With Hop < K it retains the K-Hop
	// overlap tail, with Hop > K it drops the inter-block gaps.
	buf      []complex128
	bufStart int
	total    int

	// Private scratch (an accumulator is single-goroutine by contract,
	// and long-lived, so it owns its buffers instead of borrowing from
	// the pool per push).
	spec, specc, winbuf []complex128
}

// Name implements Accumulator.
func (d *directAccumulator) Name() string { return "direct" }

// Samples implements Accumulator.
func (d *directAccumulator) Samples() int { return d.total }

// Ready implements Accumulator: one complete block suffices.
func (d *directAccumulator) Ready() bool { return d.blocks >= 1 }

// Push implements Accumulator.
func (d *directAccumulator) Push(samples []complex128) error {
	d.total += len(samples)
	if len(d.buf) == 0 {
		// Fast path: with no pending tail, every completable block lies
		// entirely inside the caller's chunk, so process it in place and
		// buffer only the leftover suffix — skipping the whole-chunk copy
		// the general path pays. (An empty buffer implies bufStart is at or
		// before the next block start: TrimBefore never discards samples a
		// future block still reads.)
		chunkStart := d.bufStart
		end := chunkStart + len(samples)
		for {
			start := d.blocks * d.p.Hop // absolute start of the next block
			if start < chunkStart || start+d.p.K > end {
				break
			}
			off := start - chunkStart
			if err := d.processBlock(samples[off:off+d.p.K], start); err != nil {
				return err
			}
		}
		// Keep what the next (incomplete) block has already received.
		from := d.blocks * d.p.Hop
		if from < chunkStart {
			from = chunkStart
		}
		if from > end {
			from = end
		}
		d.buf = append(d.buf[:0], samples[from-chunkStart:]...)
		d.bufStart = from
		return nil
	}
	d.buf = append(d.buf, samples...)
	for {
		start := d.blocks * d.p.Hop // absolute start of the next block
		if d.bufStart+len(d.buf) < start+d.p.K {
			// Drop the prefix no future block reads: everything before
			// the next block start (compacting once per push keeps the
			// cost linear in the chunk, not quadratic).
			d.buf, d.bufStart = TrimBefore(d.buf, d.bufStart, start)
			return nil
		}
		off := start - d.bufStart
		if err := d.processBlock(d.buf[off:off+d.p.K], start); err != nil {
			return err
		}
	}
}

// processBlock folds one complete analysis block (absolute sample index
// start) into the running sum: the exact per-block pipeline of Compute.
func (d *directAccumulator) processBlock(block []complex128, start int) error {
	if d.win != nil {
		if d.winbuf == nil {
			d.winbuf = make([]complex128, d.p.K)
		}
		if err := fft.ApplyWindowInto(d.winbuf, block, d.win); err != nil {
			return err
		}
		block = d.winbuf
	}
	if err := d.plan.Forward(d.spec, block); err != nil {
		return err
	}
	phaseReference(d.spec, start, d.p.K)
	if d.rows == nil {
		conjInto(d.specc, d.spec)
		accumulate(d.sum, d.spec, d.specc, d.p.M, d.rows)
	} else {
		// Pruned channels touch few rows: conjugate inline (exact)
		// instead of paying the K-bin conjugation pass per block.
		accumulateConj(d.sum, d.spec, d.rows, d.p.M)
	}
	d.blocks++
	return nil
}

// Snapshot implements Accumulator.
func (d *directAccumulator) Snapshot() (*Surface, *Stats, error) {
	if d.blocks == 0 {
		return nil, nil, fmt.Errorf("scf: accumulator needs %d samples for a first block, has %d",
			d.p.K, d.total)
	}
	var out *Surface
	if d.alphas != nil {
		out = NewSparseSurface(d.p.M, d.alphas)
	} else {
		out = NewSurface(d.p.M)
	}
	for i := range out.Data {
		if out.alphaOf(i) >= 0 {
			copy(out.Data[i], d.sum.Data[i])
		}
	}
	out.Scale(1 / float64(d.blocks))
	out.MirrorHermitian()
	stats := &Stats{
		Blocks:    d.blocks,
		FFTMults:  d.blocks * fft.ComplexMults(d.p.K),
		DSCFMults: d.blocks * d.dscfMults,
	}
	return out, stats, nil
}

// TrimBefore drops buffered samples before absolute index keepFrom,
// compacting the buffer in place: the shared pending-tail maintenance of
// every streaming accumulator (this package's direct one and the fam
// package's). buf[0] has absolute index bufStart on entry; the updated
// slice and start index are returned.
func TrimBefore(buf []complex128, bufStart, keepFrom int) ([]complex128, int) {
	cut := keepFrom - bufStart
	if cut <= 0 {
		return buf, bufStart
	}
	if cut > len(buf) {
		cut = len(buf)
	}
	n := copy(buf, buf[cut:])
	return buf[:n], bufStart + cut
}

// Reset implements Accumulator.
func (d *directAccumulator) Reset() {
	for _, row := range d.sum.Data {
		for i := range row {
			row[i] = 0
		}
	}
	d.blocks = 0
	d.buf = d.buf[:0]
	d.bufStart = 0
	d.total = 0
}
