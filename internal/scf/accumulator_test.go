package scf

import (
	"testing"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/sig"
)

// testBand synthesises a deterministic BPSK-in-noise band.
func testBand(t *testing.T, n int, seed uint64) []complex128 {
	t.Helper()
	rng := sig.NewRand(seed)
	b := &sig.BPSK{Amp: 1, Carrier: 0.125, SymbolLen: 8, Rng: rng}
	x := sig.Samples(b, n)
	noisy, _, err := sig.AddAWGN(x, 10, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	return noisy
}

// pushChunks feeds x into acc in chunks of the given sizes, cycling.
func pushChunks(t *testing.T, acc Accumulator, x []complex128, sizes []int) {
	t.Helper()
	i, c := 0, 0
	for i < len(x) {
		n := sizes[c%len(sizes)]
		c++
		if i+n > len(x) {
			n = len(x) - i
		}
		if err := acc.Push(x[i : i+n]); err != nil {
			t.Fatalf("Push at %d: %v", i, err)
		}
		i += n
	}
	if acc.Samples() != len(x) {
		t.Fatalf("Samples() = %d, pushed %d", acc.Samples(), len(x))
	}
}

// requireIdentical asserts two surfaces are bit-identical.
func requireIdentical(t *testing.T, got, want *Surface, label string) {
	t.Helper()
	if got.M != want.M {
		t.Fatalf("%s: extent M=%d vs %d", label, got.M, want.M)
	}
	for i := range want.Data {
		for j := range want.Data[i] {
			if got.Data[i][j] != want.Data[i][j] {
				t.Fatalf("%s: cell [%d][%d] = %v, want %v (not bit-identical)",
					label, i, j, got.Data[i][j], want.Data[i][j])
			}
		}
	}
}

// TestDirectAccumulatorMatchesBatch: pushing any chunking of the input
// then snapshotting is bit-identical to the batch Compute over the
// concatenation, across hop/window geometries.
func TestDirectAccumulatorMatchesBatch(t *testing.T) {
	cases := []struct {
		name   string
		p      Params
		blocks int
		chunks []int
	}{
		{"paper-geometry", Params{K: 64, M: 16}, 6, []int{1, 7, 64, 3}},
		{"overlap-hop", Params{K: 64, M: 16, Hop: 16}, 9, []int{5, 33}},
		{"gap-hop", Params{K: 64, M: 8, Hop: 80}, 5, []int{64, 11}},
		{"hamming", Params{K: 64, M: 16, Window: fft.Hamming}, 4, []int{17}},
		{"single-block", Params{K: 32, M: 8}, 1, []int{1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.p.WithDefaults()
			p.Blocks = tc.blocks
			x := testBand(t, p.SamplesNeeded(), 7)
			want, wantStats, err := Compute(x, p)
			if err != nil {
				t.Fatal(err)
			}
			acc, err := NewAccumulator(tc.p)
			if err != nil {
				t.Fatal(err)
			}
			if acc.Ready() {
				t.Fatal("Ready before any samples")
			}
			pushChunks(t, acc, x, tc.chunks)
			if !acc.Ready() {
				t.Fatal("not Ready after full input")
			}
			got, gotStats, err := acc.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, got, want, "snapshot")
			if gotStats.Blocks != wantStats.Blocks ||
				gotStats.FFTMults != wantStats.FFTMults ||
				gotStats.DSCFMults != wantStats.DSCFMults {
				t.Fatalf("stats %+v, want %+v", gotStats, wantStats)
			}
		})
	}
}

// TestDirectAccumulatorIntermediateSnapshots: snapshots taken mid-stream
// equal the batch result over the samples consumed so far, and taking
// them does not perturb later snapshots.
func TestDirectAccumulatorIntermediateSnapshots(t *testing.T) {
	p := Params{K: 64, M: 16}
	x := testBand(t, 8*64, 3)
	acc, err := NewAccumulator(p)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 8; n++ {
		if err := acc.Push(x[n*64 : (n+1)*64]); err != nil {
			t.Fatal(err)
		}
		got, _, err := acc.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		bp := p
		bp.Blocks = n + 1
		want, _, err := Compute(x[:(n+1)*64], bp)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, got, want, "after block")
	}
}

// TestDirectAccumulatorReset: after Reset the accumulator behaves as
// freshly constructed, including the absolute-time phase reference.
func TestDirectAccumulatorReset(t *testing.T) {
	p := Params{K: 64, M: 16, Hop: 48}
	acc, err := NewAccumulator(p)
	if err != nil {
		t.Fatal(err)
	}
	// Pollute with one stream, then reset.
	pushChunks(t, acc, testBand(t, 500, 11), []int{13})
	acc.Reset()
	if acc.Ready() || acc.Samples() != 0 {
		t.Fatalf("Reset left Ready=%v Samples=%d", acc.Ready(), acc.Samples())
	}
	bp := p.WithDefaults()
	bp.Blocks = 5
	x := testBand(t, bp.SamplesNeeded(), 12)
	want, _, err := Compute(x, bp)
	if err != nil {
		t.Fatal(err)
	}
	pushChunks(t, acc, x, []int{29, 1})
	got, _, err := acc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, got, want, "post-reset")
}

// TestDirectAccumulatorNotReady: Snapshot before a complete block fails.
func TestDirectAccumulatorNotReady(t *testing.T) {
	acc, err := NewAccumulator(Params{K: 64, M: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Push(make([]complex128, 63)); err != nil {
		t.Fatal(err)
	}
	if acc.Ready() {
		t.Fatal("Ready with 63 of 64 samples")
	}
	if _, _, err := acc.Snapshot(); err == nil {
		t.Fatal("Snapshot succeeded without a complete block")
	}
}
