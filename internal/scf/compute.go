package scf

import (
	"fmt"
	"math"
	"math/cmplx"

	"tiledcfd/internal/fft"
)

// Stats reports the work a DSCF computation performed, for the paper's
// section 2 complexity comparison (experiment E1).
type Stats struct {
	// Blocks is the number of integration steps executed.
	Blocks int
	// FFTMults is the number of complex multiplications spent in FFTs.
	FFTMults int
	// DSCFMults is the number of complex multiplications spent in the
	// spectral-correlation products.
	DSCFMults int
	// Cycles is the modeled Montium datapath cycle cost of the surface,
	// charged via the paper's Table-1-style accounting (montium package
	// kernel models). Only the fixed-point backends fill it — float
	// estimators have no hardware cost model and report zero — so
	// cfdbench can put float mult counts and Q15 cycle counts side by
	// side per surface.
	Cycles int64
	// PerTile breaks Cycles down per modeled tile when the work was
	// mapped onto a fabric (internal/tile schedules fill it; the Q15
	// backends report their whole cost as tile 0). Empty when no tile
	// model applies. Summed Compute equals Cycles when both are set.
	PerTile []TileCycles
	// Kernel names the fixed-point kernel implementation the surface was
	// computed with (fixed.Kernels.Name(), e.g. "swar" or "scalar").
	// Empty for float estimators, which have no kernel seam. The choice
	// never changes surface bits — it is recorded so benchmark output can
	// attribute timings to the datapath that produced them.
	Kernel string
}

// TileCycles is one modeled tile's share of a multi-tile schedule: the
// datapath cycles it computes and the cycles its NoC ports spend moving
// operands on and off the tile.
type TileCycles struct {
	// Tile is the tile index within the fabric.
	Tile int
	// Compute is the tile's modeled datapath cycle count.
	Compute int64
	// Transfer is the tile's modeled NoC port occupancy in cycles
	// (sent plus received words over the link bandwidth).
	Transfer int64
}

// Ratio returns DSCFMults/FFTMults, the paper's "16 times as many complex
// multiplications" figure for K = 256.
func (s Stats) Ratio() float64 {
	if s.FFTMults == 0 {
		return math.Inf(1)
	}
	return float64(s.DSCFMults) / float64(s.FFTMults)
}

// Compute evaluates the DSCF of x (float64 reference implementation).
//
// Per integration step n it computes the K-point FFT of the block starting
// at sample n·Hop, applies the absolute-time phase reference of
// expression 2 (a no-op when Hop == K, because e^{-j2π·mK·v/K} = 1), and
// accumulates X_{n,f+a}·conj(X_{n,f-a}) for every grid cell. The result is
// normalised by 1/Blocks per expression 3.
func Compute(x []complex128, p Params) (*Surface, *Stats, error) {
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if len(x) < p.SamplesNeeded() {
		return nil, nil, fmt.Errorf("scf: need %d samples, have %d", p.SamplesNeeded(), len(x))
	}
	plan, err := fft.PlanFor(p.K)
	if err != nil {
		return nil, nil, err
	}
	var win []float64
	if p.Window != fft.Rectangular {
		if win, err = fft.Window(p.Window, p.K); err != nil {
			return nil, nil, err
		}
	}
	s := NewSurfaceFor(p)
	rows := p.CandidateRows()
	stats := &Stats{Blocks: p.Blocks}
	// Per-block work counts are invariant across blocks; DSCFMults in
	// particular rebuilds the sorted candidate row set on every call, so
	// compute both once outside the integration loop.
	fftMults, dscfMults := fft.ComplexMults(p.K), p.DSCFMults()
	specBuf := fft.GetScratch(p.K)
	defer fft.PutScratch(specBuf)
	spec := *specBuf
	var specc []complex128
	if rows == nil {
		speccBuf := fft.GetScratch(p.K)
		defer fft.PutScratch(speccBuf)
		specc = *speccBuf
	}
	var winbuf []complex128
	if win != nil {
		winbufBuf := fft.GetScratch(p.K)
		defer fft.PutScratch(winbufBuf)
		winbuf = *winbufBuf
	}
	for n := 0; n < p.Blocks; n++ {
		start := n * p.Hop
		block := x[start : start+p.K]
		if win != nil {
			if err := fft.ApplyWindowInto(winbuf, block, win); err != nil {
				return nil, nil, err
			}
			block = winbuf
		}
		if err := plan.Forward(spec, block); err != nil {
			return nil, nil, err
		}
		stats.FFTMults += fftMults
		phaseReference(spec, start, p.K)
		if rows == nil {
			// The full plane reads every conjugated bin ~2M times, so one
			// conjugation pass per block is cheaper than conjugating at
			// every cell.
			conjInto(specc, spec)
			accumulate(s, spec, specc, p.M, rows)
		} else {
			// A pruned snapshot touches few rows; conjugating inline in
			// the accumulation (exact, so cell values are unchanged)
			// beats a full K-bin pass.
			accumulateConj(s, spec, rows, p.M)
		}
		stats.DSCFMults += dscfMults
	}
	s.Scale(1 / float64(p.Blocks))
	s.MirrorHermitian()
	return s, stats, nil
}

// phaseReference rotates each bin by e^{-j2π·start·v/K}, converting the
// window-relative FFT into the absolute-time-referenced X_{n,v} of
// expression 2. When start is a multiple of K the rotation is identity and
// is skipped, matching the hardware (which performs no extra rotation
// because it advances by whole blocks). The rotation indexes the cached
// roots table with the exponent reduced mod K in integer arithmetic, so
// it stays exact for large start·v and allocates nothing.
func phaseReference(spec []complex128, start, k int) {
	if start%k == 0 {
		return
	}
	// Roots only fails for k < 1, which every caller has already
	// validated away — reaching it is a programming error.
	roots, err := fft.Roots(k)
	if err != nil {
		panic("scf: phaseReference with unvalidated size: " + err.Error())
	}
	// (start·v) mod k advances by start per bin; k is a power of two
	// (validated upstream), so the reduction is a masked add.
	step := start & (k - 1)
	idx := 0
	for v := range spec {
		spec[v] *= roots[idx]
		idx = (idx + step) & (k - 1)
	}
}

// conjInto writes the elementwise conjugate of spec into specc, hoisting
// the per-cell conjugation of the accumulate loop to one pass per block.
func conjInto(specc, spec []complex128) {
	for v, c := range spec {
		specc[v] = cmplx.Conj(c)
	}
}

// accumulate adds the cyclic periodogram of one block to the a >= 0 rows
// of the surface. The DSCF is exactly Hermitian in a — the (f, -a) term
// X_{f-a}·conj(X_{f+a}) is the termwise conjugate of the (f, a) term — so
// the a < 0 rows are not touched here; callers fill them once at the end
// with Surface.MirrorHermitian, bit-identical to accumulating them
// directly. specc must hold the conjugate of spec (conjInto). K is a
// power of two (validated upstream), so the f±a bin wrap-around is a
// masked increment instead of a per-cell modulo; the loop allocates
// nothing.
//
// rows, when non-nil, restricts accumulation to the listed a >= 0 rows
// (alpha-candidate pruning); nil means every row 0..m-1. The per-cell
// arithmetic is unchanged, so pruned rows stay bit-identical to the
// full-plane computation.
func accumulate(s *Surface, spec, specc []complex128, m int, rows []int) {
	k := len(spec)
	mask := k - 1
	if rows == nil {
		for a := 0; a <= m-1; a++ {
			accumulateRow(s.Data[a+m-1], spec, specc, a, m, mask)
		}
		return
	}
	for _, a := range rows {
		accumulateRow(s.Row(a), spec, specc, a, m, mask)
	}
}

// accumulateRow adds one block's contribution to the row for offset a.
// The f±a bin indices wrap around the spectrum at most once each across
// the row, so instead of masking both indices every cell the loop runs
// over contiguous segments between wrap points: each segment is a plain
// three-slice multiply-accumulate that compiles without bounds checks.
// Cells are visited in the same order with the same arithmetic as the
// per-cell masked walk, so the accumulated values are unchanged.
func accumulateRow(row, spec, specc []complex128, a, m, mask int) {
	k := mask + 1
	pi := (a - (m - 1)) & mask
	qi := (-a - (m - 1)) & mask
	for fi := 0; fi < len(row); {
		n := len(row) - fi
		if r := k - pi; r < n {
			n = r
		}
		if r := k - qi; r < n {
			n = r
		}
		rs := row[fi : fi+n : fi+n]
		ps := spec[pi : pi+n : pi+n]
		qs := specc[qi : qi+n : qi+n]
		for i := range rs {
			rs[i] += ps[i] * qs[i]
		}
		fi += n
		pi = (pi + n) & mask
		qi = (qi + n) & mask
	}
}

// accumulateConj is the pruned-path variant of accumulate: it conjugates
// the f-a operand inline instead of reading a precomputed conjugate
// spectrum, saving the K-bin conjInto pass per block when only a few
// candidate rows are held. Conjugation is exact, so every cell receives
// contributions bit-identical to the conjInto-based full-plane path.
func accumulateConj(s *Surface, spec []complex128, rows []int, m int) {
	mask := len(spec) - 1
	for _, a := range rows {
		accumulateRowConj(s.Row(a), spec, a, m, mask)
	}
}

// accumulateRowConj mirrors accumulateRow with the conjugation fused
// into the product (same segment walk, same cell order).
func accumulateRowConj(row, spec []complex128, a, m, mask int) {
	k := mask + 1
	pi := (a - (m - 1)) & mask
	qi := (-a - (m - 1)) & mask
	for fi := 0; fi < len(row); {
		n := len(row) - fi
		if r := k - pi; r < n {
			n = r
		}
		if r := k - qi; r < n {
			n = r
		}
		rs := row[fi : fi+n : fi+n]
		ps := spec[pi : pi+n : pi+n]
		qs := spec[qi : qi+n : qi+n]
		// The conjugate is folded into the product algebraically —
		// p·conj(q) = (pr·qr + pi·qi) + j(pi·qr - pr·qi) — the same four
		// multiplies and adds the compiler emits for p·q, with the sign
		// flips absorbed for free. Four cells at a time: iterations touch
		// disjoint cells, so the unroll only exposes independent work.
		i := 0
		for ; i+3 < n; i += 4 {
			p0, q0 := ps[i], qs[i]
			p1, q1 := ps[i+1], qs[i+1]
			p2, q2 := ps[i+2], qs[i+2]
			p3, q3 := ps[i+3], qs[i+3]
			rs[i] += complex(real(p0)*real(q0)+imag(p0)*imag(q0),
				imag(p0)*real(q0)-real(p0)*imag(q0))
			rs[i+1] += complex(real(p1)*real(q1)+imag(p1)*imag(q1),
				imag(p1)*real(q1)-real(p1)*imag(q1))
			rs[i+2] += complex(real(p2)*real(q2)+imag(p2)*imag(q2),
				imag(p2)*real(q2)-real(p2)*imag(q2))
			rs[i+3] += complex(real(p3)*real(q3)+imag(p3)*imag(q3),
				imag(p3)*real(q3)-real(p3)*imag(q3))
		}
		for ; i < n; i++ {
			p, q := ps[i], qs[i]
			rs[i] += complex(real(p)*real(q)+imag(p)*imag(q),
				imag(p)*real(q)-real(p)*imag(q))
		}
		fi += n
		pi = (pi + n) & mask
		qi = (qi + n) & mask
	}
}

// SpectrumAt computes the absolute-time-referenced spectrum X_{n,·} of the
// block starting at sample start: the quantity expression 2 denotes. It is
// exposed for the systolic and SoC simulators, which consume spectra
// rather than raw samples.
func SpectrumAt(x []complex128, start int, p Params) ([]complex128, error) {
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if start < 0 || start+p.K > len(x) {
		return nil, fmt.Errorf("scf: block [%d,%d) outside signal of %d samples", start, start+p.K, len(x))
	}
	plan, err := fft.PlanFor(p.K)
	if err != nil {
		return nil, err
	}
	spec := make([]complex128, p.K)
	if err := plan.Forward(spec, x[start:start+p.K]); err != nil {
		return nil, err
	}
	phaseReference(spec, start, p.K)
	return spec, nil
}
