package scf

import (
	"fmt"
	"math"
	"math/cmplx"

	"tiledcfd/internal/fft"
)

// Stats reports the work a DSCF computation performed, for the paper's
// section 2 complexity comparison (experiment E1).
type Stats struct {
	// Blocks is the number of integration steps executed.
	Blocks int
	// FFTMults is the number of complex multiplications spent in FFTs.
	FFTMults int
	// DSCFMults is the number of complex multiplications spent in the
	// spectral-correlation products.
	DSCFMults int
	// Cycles is the modeled Montium datapath cycle cost of the surface,
	// charged via the paper's Table-1-style accounting (montium package
	// kernel models). Only the fixed-point backends fill it — float
	// estimators have no hardware cost model and report zero — so
	// cfdbench can put float mult counts and Q15 cycle counts side by
	// side per surface.
	Cycles int64
	// PerTile breaks Cycles down per modeled tile when the work was
	// mapped onto a fabric (internal/tile schedules fill it; the Q15
	// backends report their whole cost as tile 0). Empty when no tile
	// model applies. Summed Compute equals Cycles when both are set.
	PerTile []TileCycles
}

// TileCycles is one modeled tile's share of a multi-tile schedule: the
// datapath cycles it computes and the cycles its NoC ports spend moving
// operands on and off the tile.
type TileCycles struct {
	// Tile is the tile index within the fabric.
	Tile int
	// Compute is the tile's modeled datapath cycle count.
	Compute int64
	// Transfer is the tile's modeled NoC port occupancy in cycles
	// (sent plus received words over the link bandwidth).
	Transfer int64
}

// Ratio returns DSCFMults/FFTMults, the paper's "16 times as many complex
// multiplications" figure for K = 256.
func (s Stats) Ratio() float64 {
	if s.FFTMults == 0 {
		return math.Inf(1)
	}
	return float64(s.DSCFMults) / float64(s.FFTMults)
}

// Compute evaluates the DSCF of x (float64 reference implementation).
//
// Per integration step n it computes the K-point FFT of the block starting
// at sample n·Hop, applies the absolute-time phase reference of
// expression 2 (a no-op when Hop == K, because e^{-j2π·mK·v/K} = 1), and
// accumulates X_{n,f+a}·conj(X_{n,f-a}) for every grid cell. The result is
// normalised by 1/Blocks per expression 3.
func Compute(x []complex128, p Params) (*Surface, *Stats, error) {
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if len(x) < p.SamplesNeeded() {
		return nil, nil, fmt.Errorf("scf: need %d samples, have %d", p.SamplesNeeded(), len(x))
	}
	plan, err := fft.PlanFor(p.K)
	if err != nil {
		return nil, nil, err
	}
	var win []float64
	if p.Window != fft.Rectangular {
		if win, err = fft.Window(p.Window, p.K); err != nil {
			return nil, nil, err
		}
	}
	s := NewSurface(p.M)
	stats := &Stats{Blocks: p.Blocks}
	specBuf := fft.GetScratch(p.K)
	defer fft.PutScratch(specBuf)
	speccBuf := fft.GetScratch(p.K)
	defer fft.PutScratch(speccBuf)
	spec, specc := *specBuf, *speccBuf
	var winbuf []complex128
	if win != nil {
		winbufBuf := fft.GetScratch(p.K)
		defer fft.PutScratch(winbufBuf)
		winbuf = *winbufBuf
	}
	for n := 0; n < p.Blocks; n++ {
		start := n * p.Hop
		block := x[start : start+p.K]
		if win != nil {
			if err := fft.ApplyWindowInto(winbuf, block, win); err != nil {
				return nil, nil, err
			}
			block = winbuf
		}
		if err := plan.Forward(spec, block); err != nil {
			return nil, nil, err
		}
		stats.FFTMults += fft.ComplexMults(p.K)
		phaseReference(spec, start, p.K)
		conjInto(specc, spec)
		accumulate(s, spec, specc, p.M)
		stats.DSCFMults += p.DSCFMults()
	}
	s.Scale(1 / float64(p.Blocks))
	s.MirrorHermitian()
	return s, stats, nil
}

// phaseReference rotates each bin by e^{-j2π·start·v/K}, converting the
// window-relative FFT into the absolute-time-referenced X_{n,v} of
// expression 2. When start is a multiple of K the rotation is identity and
// is skipped, matching the hardware (which performs no extra rotation
// because it advances by whole blocks). The rotation indexes the cached
// roots table with the exponent reduced mod K in integer arithmetic, so
// it stays exact for large start·v and allocates nothing.
func phaseReference(spec []complex128, start, k int) {
	if start%k == 0 {
		return
	}
	// Roots only fails for k < 1, which every caller has already
	// validated away — reaching it is a programming error.
	roots, err := fft.Roots(k)
	if err != nil {
		panic("scf: phaseReference with unvalidated size: " + err.Error())
	}
	// (start·v) mod k advances by start per bin; k is a power of two
	// (validated upstream), so the reduction is a masked add.
	step := start & (k - 1)
	idx := 0
	for v := range spec {
		spec[v] *= roots[idx]
		idx = (idx + step) & (k - 1)
	}
}

// conjInto writes the elementwise conjugate of spec into specc, hoisting
// the per-cell conjugation of the accumulate loop to one pass per block.
func conjInto(specc, spec []complex128) {
	for v, c := range spec {
		specc[v] = cmplx.Conj(c)
	}
}

// accumulate adds the cyclic periodogram of one block to the a >= 0 rows
// of the surface. The DSCF is exactly Hermitian in a — the (f, -a) term
// X_{f-a}·conj(X_{f+a}) is the termwise conjugate of the (f, a) term — so
// the a < 0 rows are not touched here; callers fill them once at the end
// with Surface.MirrorHermitian, bit-identical to accumulating them
// directly. specc must hold the conjugate of spec (conjInto). K is a
// power of two (validated upstream), so the f±a bin wrap-around is a
// masked increment instead of a per-cell modulo; the loop allocates
// nothing.
func accumulate(s *Surface, spec, specc []complex128, m int) {
	k := len(spec)
	mask := k - 1
	for a := 0; a <= m-1; a++ {
		row := s.Data[a+m-1]
		pi := (a - (m - 1)) & mask
		qi := (-a - (m - 1)) & mask
		for fi := range row {
			row[fi] += spec[pi] * specc[qi]
			pi = (pi + 1) & mask
			qi = (qi + 1) & mask
		}
	}
}

// SpectrumAt computes the absolute-time-referenced spectrum X_{n,·} of the
// block starting at sample start: the quantity expression 2 denotes. It is
// exposed for the systolic and SoC simulators, which consume spectra
// rather than raw samples.
func SpectrumAt(x []complex128, start int, p Params) ([]complex128, error) {
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if start < 0 || start+p.K > len(x) {
		return nil, fmt.Errorf("scf: block [%d,%d) outside signal of %d samples", start, start+p.K, len(x))
	}
	plan, err := fft.PlanFor(p.K)
	if err != nil {
		return nil, err
	}
	spec := make([]complex128, p.K)
	if err := plan.Forward(spec, x[start:start+p.K]); err != nil {
		return nil, err
	}
	phaseReference(spec, start, p.K)
	return spec, nil
}
