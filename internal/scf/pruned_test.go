package scf

import (
	"strings"
	"testing"
)

// TestAlphaCandidateValidation: Validate rejects out-of-range and
// duplicate candidates and accepts well-formed sets (including an
// explicit 0).
func TestAlphaCandidateValidation(t *testing.T) {
	base := Params{K: 64, M: 16, Blocks: 1, Hop: 64}
	cases := []struct {
		name    string
		alphas  []int
		wantErr string
	}{
		{"negative", []int{-1}, "outside [0, 15]"},
		{"too-large", []int{16}, "outside [0, 15]"},
		{"duplicate", []int{4, 8, 4}, "duplicate alpha candidate a=4"},
		{"valid", []int{3, 8, 15}, ""},
		{"valid-with-zero", []int{0, 5}, ""},
		{"empty", nil, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := base
			p.AlphaCandidates = tc.alphas
			err := p.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestCandidateRowSets: CandidateRows sorts and prepends the PSD row,
// SurfaceAlphas adds the Hermitian mirrors in ascending order, and both
// are nil when pruning is off.
func TestCandidateRowSets(t *testing.T) {
	p := Params{K: 64, M: 16, AlphaCandidates: []int{11, 4, 8}}
	wantRows := []int{0, 4, 8, 11}
	wantAlphas := []int{-11, -8, -4, 0, 4, 8, 11}
	rows := p.CandidateRows()
	if len(rows) != len(wantRows) {
		t.Fatalf("CandidateRows = %v, want %v", rows, wantRows)
	}
	for i := range rows {
		if rows[i] != wantRows[i] {
			t.Fatalf("CandidateRows = %v, want %v", rows, wantRows)
		}
	}
	alphas := p.SurfaceAlphas()
	if len(alphas) != len(wantAlphas) {
		t.Fatalf("SurfaceAlphas = %v, want %v", alphas, wantAlphas)
	}
	for i := range alphas {
		if alphas[i] != wantAlphas[i] {
			t.Fatalf("SurfaceAlphas = %v, want %v", alphas, wantAlphas)
		}
	}
	// An explicit 0 candidate is not doubled.
	p.AlphaCandidates = []int{0, 7}
	if rows := p.CandidateRows(); len(rows) != 2 || rows[0] != 0 || rows[1] != 7 {
		t.Fatalf("CandidateRows with explicit 0 = %v", rows)
	}
	p.AlphaCandidates = nil
	if p.CandidateRows() != nil || p.SurfaceAlphas() != nil {
		t.Fatal("unpruned params returned non-nil row sets")
	}
}

// TestPrunedCellsSkipped: the skipped-cell count matches the sparse row
// set on the paper geometry (the quantity cfd_pruned_cells_skipped_total
// accumulates per decision).
func TestPrunedCellsSkipped(t *testing.T) {
	p := Params{K: 256, M: 64, AlphaCandidates: []int{16, 32, 11, 40}}
	// 4 candidates → 4 mirrors + 4 + a=0 = 9 held rows of 127 planes.
	want := int64(127-9) * 127
	if got := p.PrunedCellsSkipped(); got != want {
		t.Fatalf("PrunedCellsSkipped = %d, want %d", got, want)
	}
	p.AlphaCandidates = nil
	if got := p.PrunedCellsSkipped(); got != 0 {
		t.Fatalf("unpruned PrunedCellsSkipped = %d, want 0", got)
	}
}

// TestAlphaBinForHz: physical cycle frequencies map to the grid rows
// α = 2a·fs/K implies, and out-of-range frequencies are rejected.
func TestAlphaBinForHz(t *testing.T) {
	p := Params{} // paper defaults K=256, M=64
	fs := 1e6
	cases := []struct {
		alphaHz float64
		want    int
	}{
		{0, 0},
		{fs / 8, 16},   // BPSK symbol rate fs/8
		{fs / 4, 32},   // 2·carrier at carrier fs/8
		{492187.5, 63}, // top row: 2·63·fs/256
		{85937.5, 11},  // reference strip
	}
	for _, tc := range cases {
		got, err := p.AlphaBinForHz(tc.alphaHz, fs)
		if err != nil {
			t.Fatalf("AlphaBinForHz(%g): %v", tc.alphaHz, err)
		}
		if got != tc.want {
			t.Fatalf("AlphaBinForHz(%g) = %d, want %d", tc.alphaHz, got, tc.want)
		}
	}
	if _, err := p.AlphaBinForHz(fs/2, fs); err == nil {
		t.Fatal("AlphaBinForHz accepted a frequency above row M-1")
	}
	if _, err := p.AlphaBinForHz(-fs/8, fs); err == nil {
		t.Fatal("AlphaBinForHz accepted a negative row")
	}
	if _, err := p.AlphaBinForHz(1000, 0); err == nil {
		t.Fatal("AlphaBinForHz accepted a zero sample rate")
	}
}

// requireStripsIdentical asserts every row a pruned surface holds is
// bit-identical to the same row of the full-plane surface — the
// tentpole's correctness contract.
func requireStripsIdentical(t *testing.T, pruned, full *Surface, label string) {
	t.Helper()
	if !pruned.Pruned() {
		t.Fatalf("%s: surface is not pruned", label)
	}
	for _, a := range pruned.AlphaValues() {
		got, want := pruned.Row(a), full.Row(a)
		for f := range want {
			if got[f] != want[f] {
				t.Fatalf("%s: row a=%d cell %d = %v, want %v (not bit-identical)",
					label, a, f, got[f], want[f])
			}
		}
	}
}

// TestComputePrunedMatchesFull: the pruned direct DSCF holds exactly the
// candidate rows (plus mirrors and a=0), every held cell bit-identical
// to the full-plane computation, across hop geometries and windows.
func TestComputePrunedMatchesFull(t *testing.T) {
	cases := []struct {
		name string
		p    Params
	}{
		{"paper-hop", Params{K: 64, M: 16, Blocks: 8}},
		{"overlap", Params{K: 64, M: 16, Blocks: 12, Hop: 32}},
		{"k256", Params{K: 256, M: 64, Blocks: 4}},
	}
	alphas := []int{4, 8, 3, 10}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pFull := tc.p.WithDefaults()
			x := testBand(t, pFull.SamplesNeeded(), 11)
			full, fullStats, err := Compute(x, pFull)
			if err != nil {
				t.Fatal(err)
			}
			pPruned := pFull
			pPruned.AlphaCandidates = alphas
			pruned, prunedStats, err := Compute(x, pPruned)
			if err != nil {
				t.Fatal(err)
			}
			held := pPruned.SurfaceAlphas()
			got := pruned.AlphaValues()
			if len(got) != len(held) {
				t.Fatalf("pruned surface holds %v, want %v", got, held)
			}
			for i := range held {
				if got[i] != held[i] {
					t.Fatalf("pruned surface holds %v, want %v", got, held)
				}
			}
			if pruned.HasRow(5) {
				t.Fatal("pruned surface holds non-candidate row a=5")
			}
			requireStripsIdentical(t, pruned, full, "pruned Compute")
			if prunedStats.DSCFMults >= fullStats.DSCFMults {
				t.Fatalf("pruned DSCFMults=%d not below full %d",
					prunedStats.DSCFMults, fullStats.DSCFMults)
			}
		})
	}
}

// TestDirectAccumulatorPrunedMatchesBatch: pruned streaming snapshots
// are bit-identical to the pruned batch over the concatenation — and to
// the full-plane strips — regardless of how the stream is chunked
// (including the zero-copy whole-block fast path and ragged buffering).
func TestDirectAccumulatorPrunedMatchesBatch(t *testing.T) {
	pFull := Params{K: 64, M: 16, Blocks: 8}.WithDefaults()
	pPruned := pFull
	pPruned.AlphaCandidates = []int{4, 8, 3, 10}
	x := testBand(t, pFull.SamplesNeeded(), 12)
	full, _, err := Compute(x, pFull)
	if err != nil {
		t.Fatal(err)
	}
	want, wantStats, err := Compute(x, pPruned)
	if err != nil {
		t.Fatal(err)
	}
	chunkings := [][]int{
		{len(x)},     // one push: zero-copy block fast path end to end
		{64},         // exact block-sized pushes
		{1, 7, 64},   // ragged: exercises the buffered path
		{5, 129},     // straddles block boundaries
		{63, 1, 192}, // alternates buffered and zero-copy processing
	}
	for _, sizes := range chunkings {
		acc, err := NewAccumulator(pPruned)
		if err != nil {
			t.Fatal(err)
		}
		pushChunks(t, acc, x, sizes)
		got, gotStats, err := acc.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, got, want, "pruned snapshot")
		requireStripsIdentical(t, got, full, "pruned snapshot vs full plane")
		if gotStats.DSCFMults != wantStats.DSCFMults || gotStats.Blocks != wantStats.Blocks {
			t.Fatalf("chunks %v: stats %+v, want %+v", sizes, gotStats, wantStats)
		}
	}
}

// TestDirectPrunedEstimatorRejects: WithAlphaCandidates surfaces the
// Params validation errors and passes an empty set through unchanged.
func TestDirectPrunedEstimatorRejects(t *testing.T) {
	e := Direct{Params: Params{K: 64, M: 16}}
	for _, bad := range [][]int{{-3}, {16}, {2, 2}} {
		if _, err := e.WithAlphaCandidates(bad); err == nil {
			t.Fatalf("WithAlphaCandidates(%v) accepted an invalid set", bad)
		}
	}
	se, err := e.WithAlphaCandidates(nil)
	if err != nil {
		t.Fatal(err)
	}
	if se.(Direct).Params.Pruned() {
		t.Fatal("empty candidate set turned pruning on")
	}
}
