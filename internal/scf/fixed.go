package scf

import (
	"fmt"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/fixed"
)

// FixedSurface is a DSCF accumulated in saturating Q15, exactly as the
// Montium application keeps its running sums in the 16-bit memories
// M01..M08. It is the bit-true target the systolic-array and tiled-SoC
// simulations are verified against.
type FixedSurface struct {
	// M is the grid half-extent.
	M int
	// Data holds the Q15 cells, indexed Data[a+M-1][f+M-1].
	Data [][]fixed.Complex
}

// NewFixedSurface allocates a zeroed fixed surface for half-extent M.
func NewFixedSurface(m int) *FixedSurface {
	n := 2*m - 1
	data := make([][]fixed.Complex, n)
	cells := make([]fixed.Complex, n*n)
	for i := range data {
		data[i], cells = cells[:n], cells[n:]
	}
	return &FixedSurface{M: m, Data: data}
}

// At returns the accumulated S_f^a.
func (s *FixedSurface) At(f, a int) fixed.Complex {
	return s.Data[a+s.M-1][f+s.M-1]
}

// MAC accumulates x·conj(y) into cell (f, a) with Q15 saturation, the
// single read-modify-write operation every hardware model performs.
func (s *FixedSurface) MAC(f, a int, x, y fixed.Complex) {
	cell := &s.Data[a+s.M-1][f+s.M-1]
	*cell = fixed.CAdd(*cell, fixed.CMulConj(x, y))
}

// Equal reports whether two fixed surfaces are bit-identical, returning
// the first differing cell for diagnostics.
func (s *FixedSurface) Equal(o *FixedSurface) (bool, string) {
	if s.M != o.M {
		return false, fmt.Sprintf("extent %d vs %d", s.M, o.M)
	}
	for ai := range s.Data {
		for fi := range s.Data[ai] {
			if s.Data[ai][fi] != o.Data[ai][fi] {
				return false, fmt.Sprintf("cell a=%d f=%d: %+v vs %+v",
					ai-(s.M-1), fi-(s.M-1), s.Data[ai][fi], o.Data[ai][fi])
			}
		}
	}
	return true, ""
}

// Float converts the accumulated surface to a float Surface, scaling by
// 1/blocks to apply expression 3's normalisation.
func (s *FixedSurface) Float(blocks int) *Surface {
	out := NewSurface(s.M)
	inv := 1.0
	if blocks > 0 {
		inv = 1 / float64(blocks)
	}
	for ai := range s.Data {
		for fi := range s.Data[ai] {
			out.Data[ai][fi] = s.Data[ai][fi].Complex128() * complex(inv, 0)
		}
	}
	return out
}

// FixedSpectra computes the Q15 spectra of every block of x using the
// shared fixed-point FFT (output DFT/K per block). The result feeds both
// ComputeFixed and the hardware simulators, guaranteeing identical inputs.
func FixedSpectra(x []fixed.Complex, p Params) ([][]fixed.Complex, error) {
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(x) < p.SamplesNeeded() {
		return nil, fmt.Errorf("scf: need %d samples, have %d", p.SamplesNeeded(), len(x))
	}
	plan, err := fft.NewFixedPlan(p.K)
	if err != nil {
		return nil, err
	}
	out := make([][]fixed.Complex, p.Blocks)
	for n := 0; n < p.Blocks; n++ {
		start := n * p.Hop
		spec := make([]fixed.Complex, p.K)
		if err := plan.Forward(spec, x[start:start+p.K]); err != nil {
			return nil, err
		}
		out[n] = spec
	}
	return out, nil
}

// ComputeFixed evaluates the DSCF in bit-true Q15: fixed-point FFT per
// block, then saturating Q15 accumulation per grid cell in increasing
// block order (the accumulation order matters under saturation, and all
// hardware models follow the same order). Hop must be a multiple of K so
// that no phase rotation is required — the hardware performs none.
func ComputeFixed(x []fixed.Complex, p Params) (*FixedSurface, error) {
	p = p.WithDefaults()
	if p.Hop%p.K != 0 {
		return nil, fmt.Errorf("scf: fixed path requires Hop (%d) to be a multiple of K (%d)", p.Hop, p.K)
	}
	spectra, err := FixedSpectra(x, p)
	if err != nil {
		return nil, err
	}
	return AccumulateFixed(spectra, p)
}

// AccumulateFixed performs only the spectral-correlation accumulation over
// precomputed block spectra. Exposed so simulators can share block spectra
// with the reference.
func AccumulateFixed(spectra [][]fixed.Complex, p Params) (*FixedSurface, error) {
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := NewFixedSurface(p.M)
	for _, spec := range spectra {
		if len(spec) != p.K {
			return nil, fmt.Errorf("scf: spectrum length %d, want %d", len(spec), p.K)
		}
		for a := -(p.M - 1); a <= p.M-1; a++ {
			for f := -(p.M - 1); f <= p.M-1; f++ {
				xp := spec[fft.BinIndex(p.K, f+a)]
				xm := spec[fft.BinIndex(p.K, f-a)]
				s.MAC(f, a, xp, xm)
			}
		}
	}
	return s, nil
}
