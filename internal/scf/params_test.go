package scf

import (
	"testing"

	"tiledcfd/internal/fft"
)

func TestParamsDefaults(t *testing.T) {
	p := Params{}.WithDefaults()
	if p.K != 256 || p.M != 64 || p.Blocks != 1 || p.Hop != 256 {
		t.Fatalf("defaults: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	if p.Window != fft.Rectangular {
		t.Fatal("default window should be rectangular")
	}
}

func TestParamsPaperGrid(t *testing.T) {
	p := Params{K: 256, M: 64}.WithDefaults()
	if p.P() != 127 || p.F() != 127 {
		t.Fatalf("P=%d F=%d, want 127/127 (the paper's 127x127 DSCF)", p.P(), p.F())
	}
	if p.DSCFMults() != 16129 {
		t.Fatalf("DSCFMults = %d, want 127²=16129", p.DSCFMults())
	}
	if p.QuarterNSquared() != 16384 {
		t.Fatalf("QuarterNSquared = %d, want 16384", p.QuarterNSquared())
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{K: 100, M: 4, Blocks: 1, Hop: 100}, // K not pow2
		{K: 2, M: 1, Blocks: 1, Hop: 2},     // K too small
		{K: 16, M: 0, Blocks: 1, Hop: 16},   // M < 1 (bypassing defaults)
		{K: 16, M: 6, Blocks: 1, Hop: 16},   // 2(M-1)=10 > K/2=8
		{K: 16, M: 4, Blocks: 0, Hop: 16},   // blocks < 1
		{K: 16, M: 4, Blocks: 1, Hop: 0},    // hop < 1
		{K: 16, M: 4, Blocks: -2, Hop: 16},  // negative blocks
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d (%+v) should fail validation", i, p)
		}
	}
	good := Params{K: 16, M: 5, Blocks: 3, Hop: 8}
	if err := good.Validate(); err != nil {
		t.Errorf("good params rejected: %v", err)
	}
}

func TestSamplesNeeded(t *testing.T) {
	p := Params{K: 256, M: 64, Blocks: 4, Hop: 256}
	if got := p.SamplesNeeded(); got != 1024 {
		t.Fatalf("SamplesNeeded = %d, want 1024", got)
	}
	q := Params{K: 256, M: 64, Blocks: 4, Hop: 128}
	if got := q.SamplesNeeded(); got != 640 {
		t.Fatalf("SamplesNeeded hop 128 = %d, want 640", got)
	}
}
