package scf

import (
	"fmt"
	"runtime"
	"sync"

	"tiledcfd/internal/fft"
)

// ComputeParallel evaluates the DSCF with one worker per CPU core
// processing whole integration blocks, then merges the per-block partial
// surfaces in block order, which keeps the floating-point summation order
// identical to Compute — the two functions return bit-identical results.
//
// This is the software twin of the paper's scalability argument: blocks
// are independent until the final accumulation, so the work parallelises
// embarrassingly (the hardware instead parallelises within a block across
// tiles; both decompositions are exact).
func ComputeParallel(x []complex128, p Params, workers int) (*Surface, *Stats, error) {
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if len(x) < p.SamplesNeeded() {
		return nil, nil, fmt.Errorf("scf: need %d samples, have %d", p.SamplesNeeded(), len(x))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > p.Blocks {
		workers = p.Blocks
	}
	var win []float64
	if p.Window != fft.Rectangular {
		var err error
		if win, err = fft.Window(p.Window, p.K); err != nil {
			return nil, nil, err
		}
	}
	partials := make([]*Surface, p.Blocks)
	rows := p.CandidateRows()
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			plan, err := fft.PlanFor(p.K)
			if err != nil {
				errs[w] = err
				return
			}
			specBuf := fft.GetScratch(p.K)
			defer fft.PutScratch(specBuf)
			speccBuf := fft.GetScratch(p.K)
			defer fft.PutScratch(speccBuf)
			spec, specc := *specBuf, *speccBuf
			var winbuf []complex128
			if win != nil {
				winbufBuf := fft.GetScratch(p.K)
				defer fft.PutScratch(winbufBuf)
				winbuf = *winbufBuf
			}
			for n := w; n < p.Blocks; n += workers {
				start := n * p.Hop
				block := x[start : start+p.K]
				if win != nil {
					if err := fft.ApplyWindowInto(winbuf, block, win); err != nil {
						errs[w] = err
						return
					}
					block = winbuf
				}
				if err := plan.Forward(spec, block); err != nil {
					errs[w] = err
					return
				}
				phaseReference(spec, start, p.K)
				conjInto(specc, spec)
				s := NewSurfaceFor(p)
				accumulate(s, spec, specc, p.M, rows)
				partials[n] = s
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	// In-order merge keeps summation order identical to Compute. Only the
	// a >= 0 rows carry data (accumulate leaves a < 0 to the final
	// Hermitian mirror, exactly as Compute does).
	out := NewSurfaceFor(p)
	for _, part := range partials {
		for i := range out.Data {
			if out.alphaOf(i) < 0 {
				continue
			}
			for j := range out.Data[i] {
				out.Data[i][j] += part.Data[i][j]
			}
		}
	}
	out.Scale(1 / float64(p.Blocks))
	out.MirrorHermitian()
	stats := &Stats{
		Blocks:    p.Blocks,
		FFTMults:  p.Blocks * fft.ComplexMults(p.K),
		DSCFMults: p.Blocks * p.DSCFMults(),
	}
	return out, stats, nil
}
