package scf

// Estimator is the pluggable spectral-correlation estimator interface.
// Every estimator consumes a sampled band and produces the same Surface
// grid the detectors, scanners and plotting tools consume, plus the
// work Stats the complexity experiments compare. Implementations:
//
//   - Direct (this package): the paper's direct DSCF — K-point FFT per
//     block plus one complex multiplication per grid cell per block.
//   - fam.FAM: the FFT Accumulation Method — overlapping windowed
//     channelizer, downconversion, second FFT across blocks.
//   - fam.SSCA: the Strip Spectral Correlation Analyzer — channelizer
//     against the full-rate conjugate signal, one long strip FFT per
//     channel.
//
// Estimators must be safe for concurrent use by multiple goroutines on
// distinct inputs (they are value types holding only configuration).
type Estimator interface {
	// Name identifies the estimator in reports ("direct", "fam", "ssca").
	Name() string
	// Estimate computes the spectral-correlation surface of x. It returns
	// an error when x is shorter than the estimator's configuration
	// requires.
	Estimate(x []complex128) (*Surface, *Stats, error)
}

// Direct is the paper's direct DSCF (Compute) behind the Estimator
// interface: per integration step a K-point FFT followed by the
// X_{n,f+a}·conj(X_{n,f-a}) product for every grid cell — the "16× as
// many multiplications as the FFT" path the tiled SoC accelerates.
type Direct struct {
	// Params configures the computation; zero fields take the paper's
	// defaults (K=256, M=K/4, Blocks=1, Hop=K).
	Params Params
	// Workers > 1 evaluates integration blocks concurrently via
	// ComputeParallel (bit-identical to the serial path); 0 or 1 stays
	// serial. Unlike fam.FAM/fam.SSCA, zero does NOT fan out per core:
	// block parallelism allocates one partial surface per block plus a
	// merge pass, which only pays off for large Blocks counts, so it
	// stays opt-in.
	Workers int
}

// Name implements Estimator.
func (Direct) Name() string { return "direct" }

// Estimate implements Estimator.
func (e Direct) Estimate(x []complex128) (*Surface, *Stats, error) {
	if e.Workers > 1 {
		return ComputeParallel(x, e.Params, e.Workers)
	}
	return Compute(x, e.Params)
}

// CandidateEstimator is a streaming estimator that supports
// alpha-candidate pruning: WithAlphaCandidates derives a variant
// restricted to the given candidate rows (Params.AlphaCandidates
// semantics — non-negative bin offsets, mirrors implied, a=0 always
// kept). The stream engine uses it to give each channel its own
// candidate set. All three float estimators implement it.
type CandidateEstimator interface {
	StreamingEstimator
	// WithAlphaCandidates returns a copy of the estimator restricted to
	// the candidate rows, or an error for an invalid set (out of range,
	// duplicates). An empty set returns the estimator unchanged.
	WithAlphaCandidates(alphas []int) (StreamingEstimator, error)
}

// WithAlphaCandidates implements CandidateEstimator.
func (e Direct) WithAlphaCandidates(alphas []int) (StreamingEstimator, error) {
	if len(alphas) == 0 {
		return e, nil
	}
	p := e.Params.WithDefaults()
	p.AlphaCandidates = append([]int(nil), alphas...)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	e.Params = p
	return e, nil
}

var _ CandidateEstimator = Direct{}

// TotalMults returns the estimator's total complex-multiplication count,
// the figure the estimator benchmarks compare side by side.
func (s Stats) TotalMults() int { return s.FFTMults + s.DSCFMults }
