// Package scf implements the Discrete Spectral Correlation Function
// (DSCF) of the paper — the computational heart of Cyclostationary Feature
// Detection — in three mutually validating forms:
//
//   - Compute: the FFT-accumulation reference in float64, implementing
//     expressions 1–3 of the paper: per block n an FFT of K samples with
//     the absolute-time phase reference, then accumulation of
//     S_f^a += X_{n,f+a}·conj(X_{n,f-a}) over N blocks, normalised by 1/N.
//   - ComputeDirect: a brute-force evaluation of expression 2 (direct DFT
//     with the (n+k) absolute-time exponent) used as ground truth in tests.
//   - ComputeFixed: a bit-true Q15 version using the same fixed-point FFT
//     and the same saturating in-memory accumulation as the Montium
//     hardware model; the systolic-array and tiled-SoC simulations are
//     verified to match it bit for bit.
//
// Grid conventions follow the paper: for a K-point spectrum the frequency
// f and frequency offset a each range over [-(M-1), +(M-1)] with
// M = K/4 (so K = 256 gives f, a in [-63, +63] and a 127x127 surface).
// The cycle frequency associated with offset a is alpha = 2a (in bin
// units), i.e. alpha_Hz = 2a·fs/K. Note the paper's section 3.3 states
// "P = 2M+1" but its own numbers (127 processors for ±63) correspond to
// P = 2M-1; we follow the numbers (see docs/PAPER_MAPPING.md).
//
// The surface satisfies the Hermitian symmetry S_f^{-a} = conj(S_f^a),
// which the property tests assert for all three implementations.
//
// # Estimator taxonomy
//
// Compute is one member of a family: the Estimator interface abstracts
// over every way of estimating the spectral-correlation surface, and the
// rest of the system (detectors, scanners, the core pipeline) consumes
// estimators rather than this package's functions directly.
//
//   - Direct (this package) wraps Compute/ComputeParallel: a K-point FFT
//     per integration block plus one complex product per grid cell per
//     block. Cheapest on the paper's fixed (2M-1)² grid; cycle-frequency
//     resolution is the grid's own 2/K.
//   - fam.FAM (package fam) is the FFT Accumulation Method: overlapping
//     windowed channelizer hops, downconversion, and a P-point second
//     FFT across hops per cell. Trades extra FFT work for α-resolution
//     1/(P·L) and the smoothing behaviour preferred on short records.
//   - fam.SSCA (package fam) is the Strip Spectral Correlation Analyzer:
//     a sliding channelizer multiplied against the conjugate full-rate
//     signal, one N-point strip FFT per channel, α-resolution 1/N.
//
// Use Direct when only the grid matters, FAM/SSCA when cycle-frequency
// resolution or classical time-smoothing estimates do. All three agree
// on feature locations (cross-checked in package fam's tests), and the
// CFD detection statistic is self-normalising, so estimators can be
// swapped without recalibrating for scale.
package scf
