// Package scf implements the Discrete Spectral Correlation Function
// (DSCF) of the paper — the computational heart of Cyclostationary Feature
// Detection — in three mutually validating forms:
//
//   - Compute: the FFT-accumulation reference in float64, implementing
//     expressions 1–3 of the paper: per block n an FFT of K samples with
//     the absolute-time phase reference, then accumulation of
//     S_f^a += X_{n,f+a}·conj(X_{n,f-a}) over N blocks, normalised by 1/N.
//   - ComputeDirect: a brute-force evaluation of expression 2 (direct DFT
//     with the (n+k) absolute-time exponent) used as ground truth in tests.
//   - ComputeFixed: a bit-true Q15 version using the same fixed-point FFT
//     and the same saturating in-memory accumulation as the Montium
//     hardware model; the systolic-array and tiled-SoC simulations are
//     verified to match it bit for bit.
//
// Grid conventions follow the paper: for a K-point spectrum the frequency
// f and frequency offset a each range over [-(M-1), +(M-1)] with
// M = K/4 (so K = 256 gives f, a in [-63, +63] and a 127x127 surface).
// The cycle frequency associated with offset a is alpha = 2a (in bin
// units), i.e. alpha_Hz = 2a·fs/K. Note the paper's section 3.3 states
// "P = 2M+1" but its own numbers (127 processors for ±63) correspond to
// P = 2M-1; we follow the numbers (see DESIGN.md).
//
// The surface satisfies the Hermitian symmetry S_f^{-a} = conj(S_f^a),
// which the property tests assert for all three implementations.
package scf
