package scf

import (
	"fmt"
	"math/cmplx"

	"tiledcfd/internal/fft"
)

// ComputeDirect evaluates the DSCF by brute force, directly from
// expressions 1–3 of the paper: for every block n and every needed bin v
// it forms
//
//	X_{n,v} = Σ_{k=0}^{K-1} x_{n+k} · e^{-j2π(n+k)v/K}
//
// (the engineering-sign twin of expression 2, with the absolute-time
// exponent (n+k) kept verbatim) and then sums the products of
// expression 3. It is O(Blocks·K·K) per bin set and exists purely as
// ground truth for tests; use Compute for anything larger than toy sizes.
//
// The per-block spectrum is a dense slice over the addressed bins
// v ∈ [-2(M-1), 2(M-1)] (index v+ext), and the exponential comes from the
// cached roots table with the exponent reduced mod K in integer
// arithmetic — exact even for the large (n+k)·v products.
func ComputeDirect(x []complex128, p Params) (*Surface, error) {
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(x) < p.SamplesNeeded() {
		return nil, fmt.Errorf("scf: need %d samples, have %d", p.SamplesNeeded(), len(x))
	}
	roots, err := fft.Roots(p.K)
	if err != nil {
		return nil, err
	}
	s := NewSurface(p.M)
	// Evaluate X_{n,v} for all bins the grid addresses: v = f±a spans
	// [-ext, ext].
	ext := 2 * (p.M - 1)
	spec := make([]complex128, 2*ext+1)
	for n := 0; n < p.Blocks; n++ {
		start := n * p.Hop
		for v := -ext; v <= ext; v++ {
			var sum complex128
			for k := 0; k < p.K; k++ {
				sum += x[start+k] * roots[fft.RootIdx((start+k)*v, p.K)]
			}
			spec[v+ext] = sum
		}
		for a := -(p.M - 1); a <= p.M-1; a++ {
			for f := -(p.M - 1); f <= p.M-1; f++ {
				s.Add(f, a, spec[f+a+ext]*cmplx.Conj(spec[f-a+ext]))
			}
		}
	}
	s.Scale(1 / float64(p.Blocks))
	return s, nil
}
