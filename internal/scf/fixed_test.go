package scf

import (
	"math/cmplx"
	"testing"
	"testing/quick"

	"tiledcfd/internal/fixed"
	"tiledcfd/internal/sig"
)

func fixedTestSignal(seed uint64, n int) []fixed.Complex {
	rng := sig.NewRand(seed)
	x := sig.Samples(&sig.WGN{Sigma: 0.4, Rng: rng}, n)
	return fixed.FromFloatSlice(x)
}

func TestComputeFixedMatchesAccumulatePath(t *testing.T) {
	p := Params{K: 32, M: 8, Blocks: 3}
	x := fixedTestSignal(7, p.WithDefaults().SamplesNeeded())
	direct, err := ComputeFixed(x, p)
	if err != nil {
		t.Fatal(err)
	}
	spectra, err := FixedSpectra(x, p)
	if err != nil {
		t.Fatal(err)
	}
	viaAccum, err := AccumulateFixed(spectra, p)
	if err != nil {
		t.Fatal(err)
	}
	if ok, diag := direct.Equal(viaAccum); !ok {
		t.Fatalf("paths differ: %s", diag)
	}
}

func TestComputeFixedTracksFloat(t *testing.T) {
	// The Q15 surface, rescaled by K² (the fixed FFT is DFT/K and the
	// product squares that), must approximate the float surface.
	const k, m, blocks = 64, 8, 2
	rng := sig.NewRand(11)
	x := sig.Samples(&sig.Tone{Amp: 0.7, Freq: 4.0 / k, Real: true}, k*blocks)
	_, _, err := sig.AddAWGN(x, 60, true, rng) // nearly clean
	if err != nil {
		t.Fatal(err)
	}
	p := Params{K: k, M: m, Blocks: blocks}
	fs, err := ComputeFixed(fixed.FromFloatSlice(x), p)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := Compute(x, p)
	if err != nil {
		t.Fatal(err)
	}
	got := fs.Float(blocks)
	// Rescale reference: float surface is |X|²-scale; fixed is |X/K|².
	ref.Scale(1.0 / float64(k*k))
	// The doubled-carrier feature cell must agree within quantisation.
	want := ref.At(0, 4)
	have := got.At(0, 4)
	if cmplx.Abs(want-have) > 0.02*(1+cmplx.Abs(want)) {
		t.Fatalf("fixed feature %v vs float %v", have, want)
	}
}

func TestComputeFixedRejectsPartialHop(t *testing.T) {
	p := Params{K: 32, M: 8, Blocks: 2, Hop: 16}
	x := fixedTestSignal(1, 64)
	if _, err := ComputeFixed(x, p); err == nil {
		t.Fatal("hop not multiple of K must be rejected on the fixed path")
	}
}

func TestComputeFixedShortInput(t *testing.T) {
	if _, err := ComputeFixed(make([]fixed.Complex, 10), Params{K: 32, M: 8}); err == nil {
		t.Fatal("short input should fail")
	}
}

func TestAccumulateFixedValidation(t *testing.T) {
	if _, err := AccumulateFixed([][]fixed.Complex{make([]fixed.Complex, 16)}, Params{K: 32, M: 8, Blocks: 1, Hop: 32}); err == nil {
		t.Fatal("wrong spectrum length should fail")
	}
	if _, err := AccumulateFixed(nil, Params{K: 20, M: 4, Blocks: 1, Hop: 20}); err == nil {
		t.Fatal("invalid params should fail")
	}
}

func TestFixedSurfaceEqualDiagnostics(t *testing.T) {
	a := NewFixedSurface(3)
	b := NewFixedSurface(3)
	if ok, _ := a.Equal(b); !ok {
		t.Fatal("empty surfaces must be equal")
	}
	b.MAC(1, -2, fixed.Complex{Re: 1000, Im: 0}, fixed.Complex{Re: 1000, Im: 0})
	ok, diag := a.Equal(b)
	if ok {
		t.Fatal("differing surfaces reported equal")
	}
	if diag == "" {
		t.Fatal("missing diagnostic")
	}
	c := NewFixedSurface(2)
	if ok, _ := a.Equal(c); ok {
		t.Fatal("extent mismatch reported equal")
	}
}

func TestFixedSurfaceFloatScaling(t *testing.T) {
	s := NewFixedSurface(2)
	one := fixed.Complex{Re: fixed.HalfQ15, Im: 0}
	s.MAC(0, 0, one, one) // += 0.25
	s.MAC(0, 0, one, one) // += 0.25
	f := s.Float(2)       // /2 -> 0.25
	got := real(f.At(0, 0))
	if got < 0.24 || got > 0.26 {
		t.Fatalf("Float(2) cell = %v, want ~0.25", got)
	}
	f0 := s.Float(0) // no normalisation
	if real(f0.At(0, 0)) < 0.49 {
		t.Fatalf("Float(0) cell = %v, want ~0.5", real(f0.At(0, 0)))
	}
}

// Property: the fixed surface is Hermitian up to one rounding LSB per
// accumulation step: S_f^{-a} == conj(S_f^a) within Blocks LSBs.
func TestQuickFixedHermitian(t *testing.T) {
	f := func(seed uint64) bool {
		p := Params{K: 16, M: 4, Blocks: 2}
		x := fixedTestSignal(seed, p.WithDefaults().SamplesNeeded())
		s, err := ComputeFixed(x, p)
		if err != nil {
			return false
		}
		m := p.M - 1
		for a := -m; a <= m; a++ {
			for ff := -m; ff <= m; ff++ {
				p1 := s.At(ff, -a)
				p2 := fixed.Conj(s.At(ff, a))
				dr := int(p1.Re) - int(p2.Re)
				di := int(p1.Im) - int(p2.Im)
				lim := p.Blocks + 1
				if dr < -lim || dr > lim || di < -lim || di > lim {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
