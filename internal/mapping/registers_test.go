package mapping

import "testing"

func TestSynthesiseChainsPaperSize(t *testing.T) {
	chains, err := SynthesiseChains(64)
	if err != nil {
		t.Fatal(err)
	}
	x, xc := chains[0], chains[1]
	if x.Kind != XChain || xc.Kind != XConjChain {
		t.Fatal("chain order wrong")
	}
	if x.Taps != 127 || xc.Taps != 127 {
		t.Fatalf("taps %d/%d, want 127", x.Taps, xc.Taps)
	}
	if x.Registers != 126 || xc.Registers != 126 {
		t.Fatalf("registers %d/%d, want 126 (minimal: one per hop)", x.Registers, xc.Registers)
	}
	// X values flow towards -a, so they enter at +63; conjugates mirror.
	if x.InjectEnd != 63 {
		t.Fatalf("X chain injects at %d, want +63", x.InjectEnd)
	}
	if xc.InjectEnd != -63 {
		t.Fatalf("X* chain injects at %d, want -63", xc.InjectEnd)
	}
}

func TestSynthesiseChainsErrors(t *testing.T) {
	if _, err := SynthesiseChains(0); err == nil {
		t.Error("m=0 should fail")
	}
}

func TestInitialValues(t *testing.T) {
	// m=64, t0=-63. Conjugate chain: tap a holds j = -63-a, spanning
	// 0 (a=-63) down to -126 (a=+63). X chain: j = -63+a, spanning -126..0.
	chains, err := SynthesiseChains(64)
	if err != nil {
		t.Fatal(err)
	}
	x, xc := chains[0], chains[1]
	if got := xc.InitialValue(64, -63); got != 0 {
		t.Fatalf("X* initial at a=-63: %d, want 0", got)
	}
	if got := xc.InitialValue(64, 63); got != -126 {
		t.Fatalf("X* initial at a=+63: %d, want -126", got)
	}
	if got := x.InitialValue(64, -63); got != -126 {
		t.Fatalf("X initial at a=-63: %d, want -126", got)
	}
	if got := x.InitialValue(64, 63); got != 0 {
		t.Fatalf("X initial at a=+63: %d, want 0", got)
	}
}

func TestInitialValuesMatchFirstTimeStep(t *testing.T) {
	// At t0 the PE at offset a must read X[f+a] and conj(X[f-a]) with
	// f = t0. The preloaded chain contents must be exactly those operands.
	const m = 8
	chains, err := SynthesiseChains(m)
	if err != nil {
		t.Fatal(err)
	}
	x, xc := chains[0], chains[1]
	t0 := -(m - 1)
	for a := -(m - 1); a <= m-1; a++ {
		if got, want := x.InitialValue(m, a), t0+a; got != want {
			t.Fatalf("X tap %d: %d, want f+a=%d", a, got, want)
		}
		if got, want := xc.InitialValue(m, a), t0-a; got != want {
			t.Fatalf("X* tap %d: %d, want f-a=%d", a, got, want)
		}
	}
}

func TestInjectedValues(t *testing.T) {
	// Advancing from t to t+1 injects bin t+m at each chain's entry end.
	const m = 64
	chains, _ := SynthesiseChains(m)
	for _, c := range chains {
		if got := c.InjectedValue(m, -63); got != 1 {
			t.Fatalf("%s inject at t=-63: %d, want 1", c.Kind, got)
		}
		if got := c.InjectedValue(m, 62); got != 126 {
			t.Fatalf("%s inject at t=62: %d, want 126", c.Kind, got)
		}
	}
}

func TestInjectedValueConsistentWithTaps(t *testing.T) {
	// After injection at the entry end, the tap expression must hold for
	// the new time step: entry tap value at t+1 equals InjectedValue(m,t).
	const m = 8
	chains, _ := SynthesiseChains(m)
	x, xc := chains[0], chains[1]
	for tm := -(m - 1); tm < m-1; tm++ {
		// X chain entry at a=+(m-1): value needed at t+1 is (t+1)+(m-1).
		if want, got := (tm+1)+(m-1), x.InjectedValue(m, tm); want != got {
			t.Fatalf("X inject at t=%d: %d, want %d", tm, got, want)
		}
		// X* chain entry at a=-(m-1): value needed is (t+1)+(m-1) too.
		if want, got := (tm+1)+(m-1), xc.InjectedValue(m, tm); want != got {
			t.Fatalf("X* inject at t=%d: %d, want %d", tm, got, want)
		}
	}
}

func TestTotalInitialLoads(t *testing.T) {
	// E8 link: the paper's Table 1 "initialisation: 127" equals the P
	// parallel chain loads for M=64.
	if got := TotalInitialLoads(64); got != 127 {
		t.Fatalf("TotalInitialLoads(64) = %d, want 127", got)
	}
	if got := TotalInitialLoads(4); got != 7 {
		t.Fatalf("TotalInitialLoads(4) = %d, want 7", got)
	}
}
