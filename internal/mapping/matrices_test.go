package mapping

import (
	"testing"

	"tiledcfd/internal/dg"
)

func TestPaperMatrices(t *testing.T) {
	// Expression 4.
	if !P1().Equal(dg.MustMat([]int{1, 0}, []int{0, 1}, []int{0, 0})) {
		t.Error("P1 differs from expression 4")
	}
	if !dg.VecEqual(S1(), dg.Vec{0, 0, 1}) {
		t.Error("s1 differs from expression 4")
	}
	// Expression 5.
	if !P2().Equal(dg.MustMat([]int{0}, []int{1})) {
		t.Error("P2 differs from expression 5")
	}
	if !dg.VecEqual(S2(), dg.Vec{1, 0}) {
		t.Error("s2 differs from expression 5")
	}
	// Expression 6.
	if !P2a1().Equal(dg.MustMat([]int{0, 0}, []int{1, 1})) {
		t.Error("P2a1 differs from expression 6")
	}
	if !P2a2().Equal(dg.MustMat([]int{0, 0}, []int{-1, 1})) {
		t.Error("P2a2 differs from expression 6")
	}
	// Expression 7.
	if !P2b().Equal(dg.MustMat([]int{0}, []int{1})) {
		t.Error("P2b differs from expression 7")
	}
}

func TestCompositionLaw(t *testing.T) {
	// E4: P2b'·P2a1' = P2' = P2b'·P2a2' (section 3.2).
	if err := VerifyComposition(); err != nil {
		t.Fatalf("composition law fails: %v", err)
	}
}

func TestP1MapsAllPlanesToSamePE(t *testing.T) {
	// Expression 4 semantics: operations with identical (f, a) execute on
	// the same processor, ordered by n.
	g, err := dg.BuildDSCF3D(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dg.Apply(g, P1(), S1())
	if err != nil {
		t.Fatal(err)
	}
	for i, node := range g.Nodes {
		wantProc := dg.Vec{node[0], node[1]}
		if !dg.VecEqual(m.Procs[i], wantProc) {
			t.Fatalf("node %v maps to proc %v, want %v", node, m.Procs[i], wantProc)
		}
		if m.Times[i] != node[2] {
			t.Fatalf("node %v scheduled at %d, want n=%d", node, m.Times[i], node[2])
		}
	}
}

func TestP2MapsFrequenciesToTime(t *testing.T) {
	// Expression 5 semantics: processor = a, time = f ("results for f = 0
	// are calculated at t = 0, etc.").
	g, err := dg.BuildDSCF2D(3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dg.Apply(g, P2(), S2())
	if err != nil {
		t.Fatal(err)
	}
	for i, node := range g.Nodes {
		if !dg.VecEqual(m.Procs[i], dg.Vec{node[1]}) {
			t.Fatalf("node %v on proc %v, want a=%d", node, m.Procs[i], node[1])
		}
		if m.Times[i] != node[0] {
			t.Fatalf("node %v at time %d, want f=%d", node, m.Times[i], node[0])
		}
	}
}
