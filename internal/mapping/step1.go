package mapping

import (
	"fmt"

	"tiledcfd/internal/dg"
)

// PE describes one processing element of the line array after both
// projections: it owns frequency offset A and computes, at every time step
// t = f, the multiply-accumulate for grid cell (f, A), storing the running
// sum in a result memory addressed by f (paper Figure 4).
type PE struct {
	// A is the frequency offset this PE owns.
	A int
	// MemoryWords is the per-PE result storage in complex words: one cell
	// per frequency, F = 2M-1.
	MemoryWords int
}

// LineArray is the systolic line architecture derived by step 1 before
// folding: P = 2M-1 PEs indexed by a in [-(M-1), +(M-1)], two
// counter-flowing register chains, time-multiplexed over F frequencies.
type LineArray struct {
	M   int
	PEs []PE
}

// DeriveLineArray runs the P1/s1 and P2/s2 projections on the DSCF
// dependence graph for half-extent m and returns the resulting line array.
// It verifies the admissibility of both mappings (causality of
// accumulation edges under s1, collision freedom of the final placement)
// and the composition law before constructing the result, so a returned
// array is a proven-correct derivation, not a drawn one.
//
// The blocks parameter sets how many integration planes the 3-D check
// uses; 2 suffices to exercise the accumulation edges and keeps the
// verification cheap for large m.
func DeriveLineArray(m, blocks int) (*LineArray, error) {
	if m < 1 {
		return nil, fmt.Errorf("mapping: DeriveLineArray m=%d must be >= 1", m)
	}
	if blocks < 2 {
		blocks = 2
	}
	if err := VerifyComposition(); err != nil {
		return nil, err
	}

	// Step 1a: project out n with P1/s1 and check admissibility.
	g3, err := dg.BuildDSCF3D(m, blocks)
	if err != nil {
		return nil, err
	}
	m3, err := dg.Apply(g3, P1(), S1())
	if err != nil {
		return nil, err
	}
	if err := m3.CheckCausal(g3, dg.AccumEdge); err != nil {
		return nil, fmt.Errorf("mapping: P1/s1 violates causality: %w", err)
	}
	if err := m3.CheckCollisionFree(); err != nil {
		return nil, fmt.Errorf("mapping: P1/s1 collides: %w", err)
	}
	// Every accumulation edge must stay on its processor: Pᵀ·(0,0,1) = 0.
	for i, e := range g3.Edges {
		if e.Kind == dg.AccumEdge && !dg.VecEqual(m3.EdgeProcDeltas[i], dg.Vec{0, 0}) {
			return nil, fmt.Errorf("mapping: accumulation edge leaves its PE: %v", m3.EdgeProcDeltas[i])
		}
	}

	// Step 1b: project out f with P2/s2 and check admissibility.
	g2, err := dg.BuildDSCF2D(m)
	if err != nil {
		return nil, err
	}
	m2, err := dg.Apply(g2, P2(), S2())
	if err != nil {
		return nil, err
	}
	if err := m2.CheckCollisionFree(); err != nil {
		return nil, fmt.Errorf("mapping: P2/s2 collides: %w", err)
	}
	// Propagation edges must hop exactly one processor per time step in
	// opposite directions: that is what makes single-register chains work.
	for i, e := range g2.Edges {
		dt := m2.EdgeTimeDeltas[i]
		dp := m2.EdgeProcDeltas[i]
		switch e.Kind {
		case dg.XPropEdge:
			if dt != 1 || !dg.VecEqual(dp, dg.Vec{-1}) {
				return nil, fmt.Errorf("mapping: X edge maps to Δproc=%v Δt=%d, want (-1)/1", dp, dt)
			}
		case dg.XConjPropEdge:
			if dt != 1 || !dg.VecEqual(dp, dg.Vec{1}) {
				return nil, fmt.Errorf("mapping: X* edge maps to Δproc=%v Δt=%d, want (+1)/1", dp, dt)
			}
		}
	}

	// Construct the verified array.
	la := &LineArray{M: m}
	f := 2*m - 1
	for a := -(m - 1); a <= m-1; a++ {
		la.PEs = append(la.PEs, PE{A: a, MemoryWords: f})
	}
	return la, nil
}

// P returns the processor count 2M-1 (127 for the paper's M = 64).
func (l *LineArray) P() int { return len(l.PEs) }

// F returns the frequencies each PE multiplexes over, 2M-1.
func (l *LineArray) F() int { return 2*l.M - 1 }

// TotalMemoryWords returns the summed per-PE result storage in complex
// words: P·F.
func (l *LineArray) TotalMemoryWords() int { return l.P() * l.F() }

// PEOf returns the PE owning offset a, or an error if a is out of range.
func (l *LineArray) PEOf(a int) (PE, error) {
	if a < -(l.M-1) || a > l.M-1 {
		return PE{}, fmt.Errorf("mapping: offset %d outside ±%d", a, l.M-1)
	}
	return l.PEs[a+l.M-1], nil
}
