package mapping

import (
	"fmt"
	"sort"
	"strings"

	"tiledcfd/internal/dg"
)

// ChainKind identifies one of the two register chains of the derived
// architecture.
type ChainKind int

// The two chain families of Figures 6/7.
const (
	// XChain carries the normal spectral values X_{n,j}; it flows towards
	// decreasing a (right-to-left in the paper's figures).
	XChain ChainKind = iota
	// XConjChain carries the conjugated values conj(X_{n,j}); it flows
	// towards increasing a (left-to-right).
	XConjChain
)

// String names the chain family.
func (c ChainKind) String() string {
	if c == XChain {
		return "X"
	}
	return "X*"
}

// Dir returns the processor-index step the chain's values take per time
// step: -1 for the X chain, +1 for the conjugate chain.
func (c ChainKind) Dir() int {
	if c == XChain {
		return -1
	}
	return 1
}

// Usage records that chain value with spectral index Value is consumed by
// processor Proc at time Time (the coordinates of the paper's Figure 5).
type Usage struct {
	Value int // spectral bin index j
	Proc  int // processor (offset a)
	Time  int // schedule time (frequency f)
}

// SpaceTimeDiagram enumerates, for half-extent m and the given chain, the
// usage points of every spectral value across the line array — the content
// of the paper's Figure 5. For the conjugate chain, value j is used by
// processor a at time t = j + a (f - a = j); for the normal chain at
// t = j - a (f + a = j). Only usages with t within the schedule
// [-(m-1), m-1] appear.
func SpaceTimeDiagram(m int, kind ChainKind) []Usage {
	var out []Usage
	ext := m - 1
	for j := -2 * ext; j <= 2*ext; j++ {
		for a := -ext; a <= ext; a++ {
			var t int
			if kind == XConjChain {
				t = j + a
			} else {
				t = j - a
			}
			if t >= -ext && t <= ext {
				out = append(out, Usage{Value: j, Proc: a, Time: t})
			}
		}
	}
	return out
}

// SharedTrajectory applies the paper's expression 6 space-time transform
// to the usage points of a chain and verifies the observation of section
// 3.2 ("all dotted lines are mapped on top of each other"): the image of a
// usage point under the transform depends only on the processor, never on
// which spectral value is travelling, so every value of the family shares
// one register trajectory. It also verifies that consecutive usages of
// each value (ordered by time) hop exactly one processor in the chain's
// flow direction per time step, the property that makes a single register
// per hop sufficient (Figure 6). It returns the common per-hop
// displacement (Δproc, Δt) = (Dir(), 1), or an error if any value
// deviates.
func SharedTrajectory(m int, kind ChainKind) (dProc, dTime int, err error) {
	var tr dg.Mat
	if kind == XConjChain {
		tr = P2a1().Transpose()
	} else {
		tr = P2a2().Transpose()
	}
	usages := SpaceTimeDiagram(m, kind)
	byValue := make(map[int][]Usage)
	for _, u := range usages {
		byValue[u.Value] = append(byValue[u.Value], u)
	}
	// imageAt records, per processor, the transform image first seen there;
	// every other value must reproduce it exactly (the coincidence).
	imageAt := make(map[int]dg.Vec)
	for j, us := range byValue {
		sort.Slice(us, func(x, y int) bool { return us[x].Time < us[y].Time })
		for i, u := range us {
			// Nodes are (f, a) = (Time, Proc) in the 2-D graph coordinates.
			img, err := tr.MulVec(dg.Vec{u.Time, u.Proc})
			if err != nil {
				return 0, 0, err
			}
			// Quotient out the value index: shift the time coordinate by j
			// before transforming would keep images literally equal; the
			// transforms have a zero first row, so the image already
			// depends only on Proc. Verify that.
			if prev, ok := imageAt[u.Proc]; ok {
				if !dg.VecEqual(prev, img) {
					return 0, 0, fmt.Errorf("mapping: value %d image %v at proc %d, others map to %v",
						j, img, u.Proc, prev)
				}
			} else {
				imageAt[u.Proc] = img
			}
			if i == 0 {
				continue
			}
			dp := u.Proc - us[i-1].Proc
			dt := u.Time - us[i-1].Time
			if dp != kindStep(kind) || dt != 1 {
				return 0, 0, fmt.Errorf("mapping: value %d hops (Δp=%d,Δt=%d), want (%d,1)",
					j, dp, dt, kindStep(kind))
			}
		}
	}
	return kindStep(kind), 1, nil
}

func kindStep(kind ChainKind) int {
	if kind == XChain {
		return -1
	}
	return 1
}

// RenderSpaceTime draws the Figure 5 style diagram as ASCII for a small m:
// rows are time steps, columns processors, cells show the value index
// consumed. Values outside single digits render in hex-like base36 to
// keep columns aligned; intended for the cfdmap tool at m <= 5.
func RenderSpaceTime(m int, kind ChainKind) string {
	ext := m - 1
	grid := make(map[[2]int]int)
	for _, u := range SpaceTimeDiagram(m, kind) {
		grid[[2]int{u.Time, u.Proc}] = u.Value
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s chain (m=%d): rows t=f, cols a; cell = spectral index j\n", kind, m)
	b.WriteString("  t\\a |")
	for a := -ext; a <= ext; a++ {
		fmt.Fprintf(&b, "%4d", a)
	}
	b.WriteString("\n")
	b.WriteString("  ----+" + strings.Repeat("----", 2*ext+1) + "\n")
	for t := -ext; t <= ext; t++ {
		fmt.Fprintf(&b, "%5d |", t)
		for a := -ext; a <= ext; a++ {
			if v, ok := grid[[2]int{t, a}]; ok {
				fmt.Fprintf(&b, "%4d", v)
			} else {
				b.WriteString("   .")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
