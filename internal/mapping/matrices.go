package mapping

import (
	"fmt"

	"tiledcfd/internal/dg"
)

// P1 returns the paper's expression 4 processor-assignment matrix, which
// projects the 3-D DG (f, a, n) onto the (f, a) plane.
func P1() dg.Mat {
	return dg.MustMat(
		[]int{1, 0},
		[]int{0, 1},
		[]int{0, 0},
	)
}

// S1 returns the expression 4 scheduling vector: t = n, so integration
// plane n-1 executes before plane n.
func S1() dg.Vec { return dg.Vec{0, 0, 1} }

// P2 returns the expression 5 assignment matrix for the second projection:
// the 2-D graph (f, a) collapses to the line coordinate a.
func P2() dg.Mat {
	return dg.MustMat(
		[]int{0},
		[]int{1},
	)
}

// S2 returns the expression 5 scheduling vector: t = f, the
// time-multiplexing over frequencies.
func S2() dg.Vec { return dg.Vec{1, 0} }

// P2a1 returns the expression 6 space-time transform that removes absolute
// time for the conjugate (dotted) diagonal family.
func P2a1() dg.Mat {
	return dg.MustMat(
		[]int{0, 0},
		[]int{1, 1},
	)
}

// P2a2 returns the expression 6 space-time transform for the normal
// (solid) diagonal family.
func P2a2() dg.Mat {
	return dg.MustMat(
		[]int{0, 0},
		[]int{-1, 1},
	)
}

// P2b returns the expression 7 trivial final projection onto the line
// array.
func P2b() dg.Mat {
	return dg.MustMat(
		[]int{0},
		[]int{1},
	)
}

// VerifyComposition checks the paper's section 3.2 composition law: the
// two-stage interconnect mapping equals the single-stage task mapping,
// P2bᵀ·P2a1ᵀ = P2ᵀ and P2bᵀ·P2a2ᵀ = P2ᵀ. It returns an error naming the
// first identity that fails.
func VerifyComposition() error {
	p2t := P2().Transpose()
	for _, c := range []struct {
		name string
		m    dg.Mat
	}{
		{"P2b'·P2a1'", mustMul(P2b().Transpose(), P2a1().Transpose())},
		{"P2b'·P2a2'", mustMul(P2b().Transpose(), P2a2().Transpose())},
	} {
		if !c.m.Equal(p2t) {
			return fmt.Errorf("mapping: %s = %s, want P2' = %s", c.name, c.m, p2t)
		}
	}
	return nil
}

func mustMul(a, b dg.Mat) dg.Mat {
	m, err := a.Mul(b)
	if err != nil {
		panic(err)
	}
	return m
}
