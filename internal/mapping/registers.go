package mapping

import "fmt"

// RegisterChain describes one of the two synthesised communication
// structures of Figures 6/7: a shift-register chain threading the line
// array, one tap per PE, advancing one position per time step in the
// chain's flow direction.
type RegisterChain struct {
	Kind ChainKind
	// Taps is the number of PE read taps, equal to the processor count P.
	Taps int
	// Registers is the number of clocked registers between adjacent taps,
	// the "minimal register structure" count of Figure 6: P-1 inter-PE
	// registers (the first tap is fed directly by the injection port).
	Registers int
	// InjectEnd is the processor index whose end of the array receives
	// fresh values: +(M-1) for the X chain (values flow towards -a),
	// -(M-1) for the conjugate chain (values flow towards +a).
	InjectEnd int
}

// SynthesiseChains builds the two register chains for half-extent m from
// the verified shared trajectories. The register count is minimal by the
// Figure 6 argument: delays can only be realised by clocked registers, the
// trajectory advances exactly one processor per clock, so one register per
// hop and no more.
func SynthesiseChains(m int) ([2]RegisterChain, error) {
	var out [2]RegisterChain
	if m < 1 {
		return out, fmt.Errorf("mapping: SynthesiseChains m=%d must be >= 1", m)
	}
	p := 2*m - 1
	for i, kind := range []ChainKind{XChain, XConjChain} {
		dp, dt, err := SharedTrajectory(m, kind)
		if err != nil {
			return out, err
		}
		if dt != 1 || (dp != 1 && dp != -1) {
			return out, fmt.Errorf("mapping: %s trajectory (Δp=%d,Δt=%d) not register-realisable", kind, dp, dt)
		}
		inject := m - 1 // X chain: values enter at +(M-1) and flow to -a
		if kind == XConjChain {
			inject = -(m - 1)
		}
		out[i] = RegisterChain{Kind: kind, Taps: p, Registers: p - 1, InjectEnd: inject}
	}
	return out, nil
}

// InitialValue returns the spectral index resident at tap a (processor a)
// of the chain at the first time step t0 = -(M-1): the values the
// "initialisation" phase must preload. For the conjugate chain the tap
// holds j = t0 - a; for the normal chain j = t0 + a.
func (c RegisterChain) InitialValue(m, a int) int {
	t0 := -(m - 1)
	if c.Kind == XConjChain {
		return t0 - a
	}
	return t0 + a
}

// InjectedValue returns the spectral index injected at the chain's entry
// end when the array advances from time t to t+1. Both chains inject the
// index t + m at their respective ends (derived by evaluating the tap
// expression at the entry processor for time t+1):
// conjugate chain at a = -(M-1): j = (t+1) - a = t + M;
// normal chain at a = +(M-1): j = (t+1) + a = t + M.
func (c RegisterChain) InjectedValue(m, t int) int { return t + m }

// TotalInitialLoads returns how many chain values the whole array must
// preload before the first time step: P taps per chain. With two chains
// loading in parallel (each memory has its own write port) the paper's
// single "initialisation: 127 cycles" line corresponds to P cycles.
func TotalInitialLoads(m int) int { return 2*m - 1 }
