package mapping

import (
	"fmt"
	"strings"
)

// Folding is the final mapping step of section 3.3: P logical tasks
// (initial-array processors) distributed over Q physical cores, T = ⌈P/Q⌉
// tasks per core, task p on core ⌊p/T⌋ (expressions 8 and 9).
type Folding struct {
	// P is the logical processor (task) count, 2M-1.
	P int
	// Q is the physical core count.
	Q int
	// T is the tasks-per-core bound ⌈P/Q⌉.
	T int
}

// NewFolding validates and constructs a folding. Q may exceed P (trailing
// cores are simply idle), matching the ceil/floor algebra of the paper.
func NewFolding(p, q int) (Folding, error) {
	if p < 1 || q < 1 {
		return Folding{}, fmt.Errorf("mapping: NewFolding(P=%d, Q=%d) needs positive counts", p, q)
	}
	return Folding{P: p, Q: q, T: (p + q - 1) / q}, nil
}

// CoreOf returns the physical core executing task p (0-based), expression
// 9's q = ⌊p/T⌋. It panics if p is out of range (programming error).
func (f Folding) CoreOf(p int) int {
	if p < 0 || p >= f.P {
		panic(fmt.Sprintf("mapping: task %d outside [0,%d)", p, f.P))
	}
	return p / f.T
}

// TasksOf returns the half-open task range [lo, hi) of core q: tasks
// qT .. min((q+1)T, P)-1 per section 3.3.
func (f Folding) TasksOf(q int) (lo, hi int) {
	if q < 0 || q >= f.Q {
		panic(fmt.Sprintf("mapping: core %d outside [0,%d)", q, f.Q))
	}
	lo = q * f.T
	hi = lo + f.T
	if lo > f.P {
		lo = f.P
	}
	if hi > f.P {
		hi = f.P
	}
	return lo, hi
}

// LoadOf returns the number of tasks on core q.
func (f Folding) LoadOf(q int) int {
	lo, hi := f.TasksOf(q)
	return hi - lo
}

// UsedCores returns how many cores receive at least one task.
func (f Folding) UsedCores() int {
	n := 0
	for q := 0; q < f.Q; q++ {
		if f.LoadOf(q) > 0 {
			n++
		}
	}
	return n
}

// Validate checks the partition invariants: every task lands on exactly
// one core, ranges are disjoint and ordered, and no core exceeds T tasks.
func (f Folding) Validate() error {
	covered := 0
	prevHi := 0
	for q := 0; q < f.Q; q++ {
		lo, hi := f.TasksOf(q)
		if lo != prevHi {
			return fmt.Errorf("mapping: core %d range [%d,%d) not contiguous with previous end %d", q, lo, hi, prevHi)
		}
		if hi-lo > f.T {
			return fmt.Errorf("mapping: core %d load %d exceeds T=%d", q, hi-lo, f.T)
		}
		for p := lo; p < hi; p++ {
			if f.CoreOf(p) != q {
				return fmt.Errorf("mapping: task %d maps to core %d, expected %d", p, f.CoreOf(p), q)
			}
		}
		covered += hi - lo
		prevHi = hi
	}
	if covered != f.P {
		return fmt.Errorf("mapping: %d of %d tasks covered", covered, f.P)
	}
	return nil
}

// AOf converts a 0-based task index p to the frequency offset a it
// computes, for half-extent m: a = p - (M-1). Task 0 is the leftmost
// processor a = -(M-1).
func AOf(p, m int) int { return p - (m - 1) }

// TaskOfA converts a frequency offset to its 0-based task index.
func TaskOfA(a, m int) int { return a + (m - 1) }

// CommReductionFactor returns how much less often the folded architecture
// exchanges inter-core data than it computes: the chains shift once per T
// basic operations, so the factor is T (the paper's section 4 observation
// that inter-core communication "is a factor T times lower" than the
// computation rate).
func (f Folding) CommReductionFactor() int { return f.T }

// String renders the task table, e.g. for the cfdmap tool.
func (f Folding) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "P=%d tasks on Q=%d cores, T=%d:\n", f.P, f.Q, f.T)
	for q := 0; q < f.Q; q++ {
		lo, hi := f.TasksOf(q)
		fmt.Fprintf(&b, "  core %d: tasks %d..%d (%d tasks)\n", q, lo, hi-1, hi-lo)
	}
	return b.String()
}
