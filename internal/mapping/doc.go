// Package mapping implements step 1 of the paper's two-step methodology:
// the structured derivation of processor tasks and interconnect for the
// DSCF on a multi-core platform, using the array-processor projection
// technique of Kung (the paper's section 3).
//
// The derivation chain is:
//
//  1. P1/s1 project the 3-D dependence graph (f, a, n) along n: every
//     (f, a, ·) column becomes one multiply-accumulate PE executing its
//     integration steps in n order (paper Figure 3, expression 4).
//  2. P2/s2 project the remaining 2-D graph along f: the PEs collapse to a
//     line array of P = 2M-1 processors indexed by a, time-multiplexed
//     over frequencies with t = f, each with a result memory addressed by
//     f (paper Figure 4, expression 5).
//  3. The same projection, split as P2a1/P2a2 (space-time transforms that
//     remove absolute time per diagonal family) followed by P2b, derives
//     the interconnect: after the transform all conjugate lines coincide
//     on one trajectory and all normal lines on the mirrored one — two
//     counter-flowing register chains shared by all spectral values
//     (Figures 5–7). The composition law P2bᵀ·P2a1ᵀ = P2ᵀ =
//     P2bᵀ·P2a2ᵀ guarantees the split changes nothing about task
//     placement (section 3.2).
//  4. Folding (expressions 8/9) maps the P-processor line array onto Q
//     physical cores, T = ⌈P/Q⌉ tasks each, task p on core q = ⌊p/T⌋;
//     chains then shift once every T basic operations (Figures 8/9).
//
// Every artefact is an inspectable Go value with validation, so the E3–E6
// experiments can assert the paper's structures rather than re-draw them.
package mapping
