package mapping

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestFoldingPaperCase(t *testing.T) {
	// E6: P=127 tasks on Q=4 Montium cores -> T=32 (expression 8), loads
	// 32/32/32/31, task table {0..31},{32..63},{64..95},{96..126}.
	f, err := NewFolding(127, 4)
	if err != nil {
		t.Fatal(err)
	}
	if f.T != 32 {
		t.Fatalf("T = %d, want 32", f.T)
	}
	wantRanges := [][2]int{{0, 32}, {32, 64}, {64, 96}, {96, 127}}
	for q, want := range wantRanges {
		lo, hi := f.TasksOf(q)
		if lo != want[0] || hi != want[1] {
			t.Fatalf("core %d range [%d,%d), want [%d,%d)", q, lo, hi, want[0], want[1])
		}
	}
	if f.LoadOf(3) != 31 {
		t.Fatalf("core 3 load %d, want 31", f.LoadOf(3))
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("paper folding invalid: %v", err)
	}
	if f.CommReductionFactor() != 32 {
		t.Fatalf("comm reduction %d, want T=32", f.CommReductionFactor())
	}
}

func TestCoreOfBoundaries(t *testing.T) {
	f, _ := NewFolding(127, 4)
	cases := []struct{ p, q int }{
		{0, 0}, {31, 0}, {32, 1}, {63, 1}, {64, 2}, {95, 2}, {96, 3}, {126, 3},
	}
	for _, c := range cases {
		if got := f.CoreOf(c.p); got != c.q {
			t.Errorf("CoreOf(%d) = %d, want %d", c.p, got, c.q)
		}
	}
}

func TestCoreOfPanics(t *testing.T) {
	f, _ := NewFolding(8, 2)
	defer func() {
		if recover() == nil {
			t.Error("CoreOf(-1) should panic")
		}
	}()
	f.CoreOf(-1)
}

func TestTasksOfPanics(t *testing.T) {
	f, _ := NewFolding(8, 2)
	defer func() {
		if recover() == nil {
			t.Error("TasksOf(2) should panic")
		}
	}()
	f.TasksOf(2)
}

func TestNewFoldingErrors(t *testing.T) {
	if _, err := NewFolding(0, 4); err == nil {
		t.Error("P=0 should fail")
	}
	if _, err := NewFolding(4, 0); err == nil {
		t.Error("Q=0 should fail")
	}
}

func TestFoldingMoreCoresThanTasks(t *testing.T) {
	// Q > P: T=1, trailing cores idle.
	f, err := NewFolding(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if f.T != 1 {
		t.Fatalf("T = %d, want 1", f.T)
	}
	if f.UsedCores() != 3 {
		t.Fatalf("used cores %d, want 3", f.UsedCores())
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}

func TestFoldingEvenDivision(t *testing.T) {
	f, _ := NewFolding(128, 4)
	if f.T != 32 {
		t.Fatalf("T = %d", f.T)
	}
	for q := 0; q < 4; q++ {
		if f.LoadOf(q) != 32 {
			t.Fatalf("core %d load %d", q, f.LoadOf(q))
		}
	}
}

func TestSingleCoreFolding(t *testing.T) {
	// Q=1 degenerates to fully time-multiplexed execution: T=P.
	f, _ := NewFolding(127, 1)
	if f.T != 127 {
		t.Fatalf("T = %d, want 127", f.T)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAOfRoundTrip(t *testing.T) {
	const m = 64
	for p := 0; p < 127; p++ {
		a := AOf(p, m)
		if a < -63 || a > 63 {
			t.Fatalf("AOf(%d) = %d out of range", p, a)
		}
		if TaskOfA(a, m) != p {
			t.Fatalf("TaskOfA(AOf(%d)) = %d", p, TaskOfA(a, m))
		}
	}
	if AOf(0, m) != -63 || AOf(126, m) != 63 {
		t.Fatal("AOf endpoints wrong")
	}
}

func TestFoldingString(t *testing.T) {
	f, _ := NewFolding(127, 4)
	s := f.String()
	if !strings.Contains(s, "T=32") || !strings.Contains(s, "core 3: tasks 96..126 (31 tasks)") {
		t.Fatalf("String output: %q", s)
	}
}

// Property: for random P, Q the folding is always a valid partition with
// balanced loads (every used core has T tasks except possibly the last).
func TestQuickFoldingPartition(t *testing.T) {
	f := func(p16, q8 uint16) bool {
		p := int(p16%500) + 1
		q := int(q8%32) + 1
		fold, err := NewFolding(p, q)
		if err != nil {
			return false
		}
		if fold.Validate() != nil {
			return false
		}
		// Balance: all non-empty cores except the last used one carry
		// exactly T tasks.
		last := fold.UsedCores() - 1
		for c := 0; c < last; c++ {
			if fold.LoadOf(c) != fold.T {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ceil semantics of expression 8: (T-1)·Q < P <= T·Q.
func TestQuickCeilBound(t *testing.T) {
	f := func(p16, q8 uint16) bool {
		p := int(p16%1000) + 1
		q := int(q8%64) + 1
		fold, err := NewFolding(p, q)
		if err != nil {
			return false
		}
		return (fold.T-1)*q < p && p <= fold.T*q
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
