package mapping

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCoreSchedulePaperNumbers(t *testing.T) {
	// The analytic schedule must reproduce Table 1 exactly for the
	// paper's configuration (core 0: 32 tasks).
	s, err := BuildCoreSchedule(64, 256, 4, 0, PaperCycleModel())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		kind OpKind
		want int
	}{
		{OpMAC, 12192},
		{OpReadData, 381},
		{OpFFT, 1040},
		{OpReshuffle, 256},
		{OpInit, 127},
	}
	for _, c := range cases {
		if got := s.CyclesOf(c.kind); got != c.want {
			t.Errorf("%v cycles = %d, want %d", c.kind, got, c.want)
		}
	}
	if s.TotalCycles() != 13996 {
		t.Fatalf("total %d, want 13996", s.TotalCycles())
	}
}

func TestCoreScheduleLastCore(t *testing.T) {
	s, err := BuildCoreSchedule(64, 256, 4, 3, PaperCycleModel())
	if err != nil {
		t.Fatal(err)
	}
	if s.OwnT != 31 {
		t.Fatalf("core 3 owns %d tasks", s.OwnT)
	}
	if got := s.CyclesOf(OpMAC); got != 31*127*3 {
		t.Fatalf("core 3 MAC cycles %d", got)
	}
	// Shared phases identical to core 0.
	if s.CyclesOf(OpFFT) != 1040 || s.CyclesOf(OpInit) != 127 {
		t.Fatal("shared phases differ")
	}
}

func TestCoreScheduleAblationModels(t *testing.T) {
	// A 2-cycle MAC datapath would reduce the block to 13996 - 4064.
	fast := PaperCycleModel()
	fast.MACCycles = 2
	s, err := BuildCoreSchedule(64, 256, 4, 0, fast)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.TotalCycles(); got != 13996-4064 {
		t.Fatalf("2-cycle MAC total %d, want %d", got, 13996-4064)
	}
	// A single-cycle MAC would make the FFT a fifth of the budget.
	fast.MACCycles = 1
	s, err = BuildCoreSchedule(64, 256, 4, 0, fast)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.TotalCycles(); got != 13996-2*4064 {
		t.Fatalf("1-cycle MAC total %d", got)
	}
}

func TestCoreScheduleRealFFTAblation(t *testing.T) {
	// Real-input FFT: 7 stages x 64 butterflies + 7x2 setup + 128
	// untangle = 590 cycles instead of 1040; total drops accordingly.
	model := PaperCycleModel()
	model.RealInputFFT = true
	s, err := BuildCoreSchedule(64, 256, 4, 0, model)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.CyclesOf(OpFFT); got != 590 {
		t.Fatalf("real FFT cycles %d, want 590", got)
	}
	if got := s.TotalCycles(); got != 13996-(1040-590) {
		t.Fatalf("real-FFT total %d, want %d", got, 13996-450)
	}
}

func TestCompareDedicatedFFTPaperConfig(t *testing.T) {
	// Q=4: dedicating a core to the FFT leaves 3 MAC cores with
	// T' = ceil(127/3) = 43, whose accumulators (2·43·127 = 10922 words)
	// overflow the Montium's 8K budget — the paper's homogeneous choice
	// is not just simpler, it is the only feasible one at Q=4.
	cmp, err := CompareDedicatedFFT(64, 256, 4, PaperCycleModel())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.HomogeneousCycles != 13996 {
		t.Fatalf("homogeneous %d", cmp.HomogeneousCycles)
	}
	if cmp.Feasible {
		t.Fatal("Q=4 dedicated split must overflow the memory budget (T'=43)")
	}
	if cmp.DedicatedT != 43 {
		t.Fatalf("dedicated T' = %d, want ceil(127/3)=43", cmp.DedicatedT)
	}
}

func TestCompareDedicatedFFTFiveCores(t *testing.T) {
	// Q=5 is the smallest feasible dedicated split (T'=32); the
	// homogeneous mapping at Q=5 (T=26) still beats it:
	// 1804+26·127·3 = 11710 vs 127+381+32·127·3 = 12700.
	cmp, err := CompareDedicatedFFT(64, 256, 5, PaperCycleModel())
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Feasible {
		t.Fatal("Q=5 dedicated split should be feasible")
	}
	if cmp.DedicatedT != 32 {
		t.Fatalf("dedicated T' = %d, want 32", cmp.DedicatedT)
	}
	if cmp.DedicatedCycles != 12700 {
		t.Fatalf("dedicated cycles %d, want 12700", cmp.DedicatedCycles)
	}
	if cmp.HomogeneousCycles != 11710 {
		t.Fatalf("homogeneous cycles %d, want 11710", cmp.HomogeneousCycles)
	}
	if cmp.DedicatedCycles <= cmp.HomogeneousCycles {
		t.Fatal("expected the homogeneous mapping to win at Q=5")
	}
}

func TestCompareDedicatedFFTManyCores(t *testing.T) {
	// With many cores the MAC loop shrinks and the dedicated front-end
	// becomes competitive; at Q=16, T'=ceil(127/15)=9: MAC core
	// 127+381+9·127·3 = 3937 vs homogeneous 1804+8·127·3 = 4852.
	cmp, err := CompareDedicatedFFT(64, 256, 16, PaperCycleModel())
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Feasible {
		t.Fatal("Q=16 split should be feasible")
	}
	if cmp.DedicatedCycles >= cmp.HomogeneousCycles {
		t.Fatalf("dedicated (%d) should beat homogeneous (%d) at Q=16",
			cmp.DedicatedCycles, cmp.HomogeneousCycles)
	}
}

func TestCompareDedicatedFFTEdges(t *testing.T) {
	// Q=1: no core left for MACs.
	cmp, err := CompareDedicatedFFT(16, 64, 1, PaperCycleModel())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Feasible {
		t.Fatal("Q=1 dedicated split cannot be feasible")
	}
	// Q=2 at the paper grid: T'=127 overflows the accumulator budget.
	cmp, err = CompareDedicatedFFT(64, 256, 2, PaperCycleModel())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Feasible {
		t.Fatal("Q=2 dedicated split must overflow the memory budget")
	}
	if _, err := CompareDedicatedFFT(1, 64, 4, PaperCycleModel()); err == nil {
		t.Error("bad geometry should fail")
	}
}

func TestCoreScheduleErrors(t *testing.T) {
	model := PaperCycleModel()
	if _, err := BuildCoreSchedule(1, 256, 4, 0, model); err == nil {
		t.Error("m=1 should fail")
	}
	if _, err := BuildCoreSchedule(64, 100, 4, 0, model); err == nil {
		t.Error("non-pow2 K should fail")
	}
	if _, err := BuildCoreSchedule(64, 256, 0, 0, model); err == nil {
		t.Error("Q=0 should fail")
	}
	if _, err := BuildCoreSchedule(64, 256, 4, 4, model); err == nil {
		t.Error("core index out of range should fail")
	}
	bad := model
	bad.MACCycles = 0
	if _, err := BuildCoreSchedule(64, 256, 4, 0, bad); err == nil {
		t.Error("invalid model should fail")
	}
}

func TestCycleModelValidate(t *testing.T) {
	if err := PaperCycleModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := CycleModel{MACCycles: 3, ReadDataCycles: 0, ButterflyCycles: 1, MoveCycles: 1}
	if err := bad.Validate(); err == nil {
		t.Error("zero read-data cycles should fail")
	}
}

func TestOpKindNames(t *testing.T) {
	names := map[OpKind]string{
		OpFFT:       "FFT",
		OpReshuffle: "reshuffling",
		OpInit:      "initialisation",
		OpReadData:  "read data",
		OpMAC:       "multiply accumulate",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d named %q, want %q", int(k), k.String(), want)
		}
	}
	if OpKind(42).String() == "" {
		t.Error("unknown kind renders empty")
	}
}

func TestCoreScheduleString(t *testing.T) {
	s, err := BuildCoreSchedule(64, 256, 4, 0, PaperCycleModel())
	if err != nil {
		t.Fatal(err)
	}
	out := s.String()
	for _, frag := range []string{"multiply accumulate", "12192", "13996", "core 0/4"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("schedule rendering missing %q:\n%s", frag, out)
		}
	}
}

// Property: for any geometry, the busiest core's MAC share equals
// T·F·MACCycles and totals are consistent across cores (shared phases
// identical, MAC proportional to owned tasks).
func TestQuickScheduleConsistency(t *testing.T) {
	f := func(m8, q8 uint8) bool {
		m := int(m8%14) + 2 // 2..15
		q := int(q8%6) + 1  // 1..6
		model := PaperCycleModel()
		ref, err := BuildCoreSchedule(m, 64, q, 0, model)
		if err != nil {
			return false
		}
		fold, err := NewFolding(2*m-1, q)
		if err != nil {
			return false
		}
		for c := 0; c < q; c++ {
			s, err := BuildCoreSchedule(m, 64, q, c, model)
			if err != nil {
				return false
			}
			if s.CyclesOf(OpFFT) != ref.CyclesOf(OpFFT) ||
				s.CyclesOf(OpInit) != ref.CyclesOf(OpInit) ||
				s.CyclesOf(OpReshuffle) != ref.CyclesOf(OpReshuffle) ||
				s.CyclesOf(OpReadData) != ref.CyclesOf(OpReadData) {
				return false
			}
			if s.CyclesOf(OpMAC) != fold.LoadOf(c)*(2*m-1)*model.MACCycles {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
