package mapping

import (
	"fmt"
	"strings"
)

// OpKind labels one scheduled operation class of the folded CFD program.
type OpKind int

// Operation classes of a core's per-block schedule, in execution order.
const (
	OpFFT OpKind = iota
	OpReshuffle
	OpInit
	OpReadData
	OpMAC
)

// String names the operation class with the paper's Table 1 wording.
func (k OpKind) String() string {
	switch k {
	case OpFFT:
		return "FFT"
	case OpReshuffle:
		return "reshuffling"
	case OpInit:
		return "initialisation"
	case OpReadData:
		return "read data"
	case OpMAC:
		return "multiply accumulate"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// CycleModel carries the per-operation cycle costs of the step-2 target
// (the Montium). The paper's section 4.1 values are the default; the
// ablation benchmarks vary them.
type CycleModel struct {
	// MACCycles per complex multiply-accumulate (paper: 3).
	MACCycles int
	// ReadDataCycles per time step, covering the chain shift and switch
	// update (paper: 3).
	ReadDataCycles int
	// ButterflyCycles per FFT butterfly (paper: 1).
	ButterflyCycles int
	// StageSetupCycles per FFT stage (paper: 2, giving 1040 for K=256).
	StageSetupCycles int
	// MoveCycles per reshuffle move (paper: 1).
	MoveCycles int
	// RealInputFFT, when true, replaces the complex K-point FFT with the
	// real-input optimisation (a K/2-point complex FFT plus a K/2-cycle
	// untangling pass). The paper's samples are real (expression 1), so
	// this is an optimisation the mapping leaves on the table; the
	// ablation benchmarks quantify it.
	RealInputFFT bool
}

// PaperCycleModel returns the section 4.1 costs.
func PaperCycleModel() CycleModel {
	return CycleModel{MACCycles: 3, ReadDataCycles: 3, ButterflyCycles: 1, StageSetupCycles: 2, MoveCycles: 1}
}

// Validate checks all costs are positive.
func (c CycleModel) Validate() error {
	if c.MACCycles < 1 || c.ReadDataCycles < 1 || c.ButterflyCycles < 1 ||
		c.StageSetupCycles < 0 || c.MoveCycles < 1 {
		return fmt.Errorf("mapping: invalid cycle model %+v", c)
	}
	return nil
}

// Phase is one contiguous section of a core schedule.
type Phase struct {
	Kind OpKind
	// Ops is how many elementary operations the phase contains.
	Ops int
	// Cycles is the phase's cycle cost under the schedule's model.
	Cycles int
}

// CoreSchedule is the per-block schedule of one core of the folded
// architecture, with analytic cycle totals. It is the closed-form twin of
// the executed Montium kernels: internal/montium measures the same
// numbers by simulation, and the tests assert they coincide.
type CoreSchedule struct {
	Core   int
	M, Q   int
	K      int
	OwnT   int
	Model  CycleModel
	Phases []Phase
}

// BuildCoreSchedule derives the schedule of core q for grid half-extent m,
// FFT size k (log2(k) stages), folding over qn cores, under the given
// cycle model.
func BuildCoreSchedule(m, k, qn, q int, model CycleModel) (*CoreSchedule, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if m < 2 {
		return nil, fmt.Errorf("mapping: schedule m=%d must be >= 2", m)
	}
	if k < 4 || k&(k-1) != 0 {
		return nil, fmt.Errorf("mapping: schedule K=%d must be a power of two >= 4", k)
	}
	fold, err := NewFolding(2*m-1, qn)
	if err != nil {
		return nil, err
	}
	if q < 0 || q >= qn {
		return nil, fmt.Errorf("mapping: core %d outside [0,%d)", q, qn)
	}
	lo, hi := fold.TasksOf(q)
	own := hi - lo
	p := 2*m - 1
	f := 2*m - 1
	stages := 0
	for v := k; v > 1; v >>= 1 {
		stages++
	}
	butterflies := k / 2 * stages
	fftOps := butterflies
	fftCycles := butterflies*model.ButterflyCycles + stages*model.StageSetupCycles
	if model.RealInputFFT {
		// K/2-point complex FFT over packed even/odd samples, then one
		// untangle operation per output pair (K/2 single-cycle ops).
		halfStages := stages - 1
		halfBflies := k / 4 * halfStages
		fftOps = halfBflies + k/2
		fftCycles = halfBflies*model.ButterflyCycles + halfStages*model.StageSetupCycles + k/2
	}
	s := &CoreSchedule{Core: q, M: m, Q: qn, K: k, OwnT: own, Model: model}
	s.Phases = []Phase{
		{Kind: OpFFT, Ops: fftOps, Cycles: fftCycles},
		{Kind: OpReshuffle, Ops: k, Cycles: k * model.MoveCycles},
		{Kind: OpInit, Ops: p, Cycles: p}, // lockstep shift-in, 1 cycle each
		{Kind: OpReadData, Ops: f, Cycles: f * model.ReadDataCycles},
		{Kind: OpMAC, Ops: own * f, Cycles: own * f * model.MACCycles},
	}
	return s, nil
}

// MappingComparison contrasts the paper's homogeneous mapping (every core
// runs the full kernel sequence, section 6: "the set of tasks for each
// processing core is almost identical which eases the mapping") with a
// heterogeneous alternative that dedicates one core to the FFT/reshuffle
// front-end and spreads the MAC tasks over the remaining Q-1 cores.
type MappingComparison struct {
	// HomogeneousCycles is the paper-style per-block critical path.
	HomogeneousCycles int
	// DedicatedCycles is the heterogeneous per-block critical path: the
	// maximum of the front-end core (FFT + reshuffle + broadcast) and a
	// MAC core (init + read data + MAC loop with T' = ceil(P/(Q-1))).
	DedicatedCycles int
	// DedicatedT is the MAC-core task bound under the heterogeneous split.
	DedicatedT int
	// Feasible is false when Q < 2 (no core left for MACs) or the larger
	// T' overflows the accumulator memory budget (2·T'·F > 8192 words).
	Feasible bool
}

// CompareDedicatedFFT evaluates both mappings for grid half-extent m, FFT
// size k and Q cores under the given cycle model. The heterogeneous
// mapping removes the FFT and reshuffle from the MAC cores' budget but
// concentrates more MAC tasks per core; whichever side dominates sets the
// block time. For the paper's configuration the homogeneous mapping wins,
// which quantifies the section 6 design argument.
func CompareDedicatedFFT(m, k, qn int, model CycleModel) (MappingComparison, error) {
	homog, err := BuildCoreSchedule(m, k, qn, 0, model)
	if err != nil {
		return MappingComparison{}, err
	}
	cmp := MappingComparison{HomogeneousCycles: homog.TotalCycles()}
	if qn < 2 {
		return cmp, nil
	}
	p := 2*m - 1
	f := 2*m - 1
	fold, err := NewFolding(p, qn-1)
	if err != nil {
		return MappingComparison{}, err
	}
	cmp.DedicatedT = fold.T
	// Montium accumulator budget: 2·T·F 16-bit words of 8192.
	if 2*fold.T*f > 8192 {
		return cmp, nil
	}
	cmp.Feasible = true
	// Front-end core: FFT + reshuffle (the broadcast of spectra rides the
	// sample-distribution path and is uncounted, like sample loading).
	frontEnd := homog.CyclesOf(OpFFT) + homog.CyclesOf(OpReshuffle)
	// MAC core: init + read data + MAC loop at the larger T'.
	macCore := homog.CyclesOf(OpInit) + homog.CyclesOf(OpReadData) +
		fold.T*f*model.MACCycles
	if frontEnd > macCore {
		cmp.DedicatedCycles = frontEnd
	} else {
		cmp.DedicatedCycles = macCore
	}
	return cmp, nil
}

// CyclesOf returns the cycle total of one operation class.
func (s *CoreSchedule) CyclesOf(kind OpKind) int {
	for _, ph := range s.Phases {
		if ph.Kind == kind {
			return ph.Cycles
		}
	}
	return 0
}

// TotalCycles returns the block total.
func (s *CoreSchedule) TotalCycles() int {
	sum := 0
	for _, ph := range s.Phases {
		sum += ph.Cycles
	}
	return sum
}

// String renders the schedule as a Table 1 style breakdown.
func (s *CoreSchedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core %d/%d schedule (M=%d, K=%d, T_own=%d):\n", s.Core, s.Q, s.M, s.K, s.OwnT)
	for _, ph := range s.Phases {
		fmt.Fprintf(&b, "  %-20s %6d ops %7d cycles\n", ph.Kind, ph.Ops, ph.Cycles)
	}
	fmt.Fprintf(&b, "  %-20s %14s %7d cycles\n", "total", "", s.TotalCycles())
	return b.String()
}
