package mapping

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDeriveLineArrayPaperSize(t *testing.T) {
	// E3/E5: M=64 must yield the paper's 127-processor line array, each PE
	// with a 127-deep result memory (Figure 4), P·F = 16129 complex words.
	la, err := DeriveLineArray(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if la.P() != 127 {
		t.Fatalf("P = %d, want 127 complex multipliers", la.P())
	}
	if la.F() != 127 {
		t.Fatalf("F = %d, want 127", la.F())
	}
	if la.TotalMemoryWords() != 16129 {
		t.Fatalf("total memory %d complex words, want 16129", la.TotalMemoryWords())
	}
	// PEs indexed -63..+63 in order.
	if la.PEs[0].A != -63 || la.PEs[126].A != 63 {
		t.Fatalf("PE index range %d..%d", la.PEs[0].A, la.PEs[126].A)
	}
}

func TestDeriveLineArraySmall(t *testing.T) {
	la, err := DeriveLineArray(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if la.P() != 7 || la.F() != 7 {
		t.Fatalf("P/F = %d/%d", la.P(), la.F())
	}
	pe, err := la.PEOf(-3)
	if err != nil || pe.A != -3 || pe.MemoryWords != 7 {
		t.Fatalf("PEOf(-3) = %+v, %v", pe, err)
	}
	if _, err := la.PEOf(4); err == nil {
		t.Error("PEOf out of range should fail")
	}
	if _, err := la.PEOf(-4); err == nil {
		t.Error("PEOf out of range should fail")
	}
}

func TestDeriveLineArrayErrors(t *testing.T) {
	if _, err := DeriveLineArray(0, 2); err == nil {
		t.Error("m=0 should fail")
	}
}

func TestSpaceTimeDiagramConjChain(t *testing.T) {
	// Figure 5 (m=4): conjugate value j is used by processor a at time j+a.
	usages := SpaceTimeDiagram(4, XConjChain)
	// Value 0 is used by all 7 processors wherever t=a is in range: 7 uses.
	count0 := 0
	for _, u := range usages {
		if u.Value == 0 {
			count0++
			if u.Time != u.Proc {
				t.Fatalf("X*_0 used at (a=%d,t=%d), want t=a", u.Proc, u.Time)
			}
		}
	}
	if count0 != 7 {
		t.Fatalf("X*_0 used %d times, want 7", count0)
	}
	// Extreme value j=-6 is used only by a=+3 at t=-3.
	found := false
	for _, u := range usages {
		if u.Value == -6 {
			if u.Proc != 3 || u.Time != -3 {
				t.Fatalf("X*_{-6} at (a=%d,t=%d)", u.Proc, u.Time)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("X*_{-6} missing")
	}
}

func TestSpaceTimeDiagramXChainMirrors(t *testing.T) {
	// The X chain is the mirror image: value j used by a at t = j-a.
	for _, u := range SpaceTimeDiagram(4, XChain) {
		if u.Time != u.Value-u.Proc {
			t.Fatalf("X_%d at (a=%d,t=%d), want t=j-a", u.Value, u.Proc, u.Time)
		}
	}
}

func TestSharedTrajectories(t *testing.T) {
	// E4: after the expression 6 transforms, every value of a family moves
	// with the same per-hop displacement — the shared-wire observation.
	dp, dt, err := SharedTrajectory(8, XConjChain)
	if err != nil {
		t.Fatal(err)
	}
	if dp != 1 || dt != 1 {
		t.Fatalf("conj trajectory (Δp=%d,Δt=%d), want (1,1)", dp, dt)
	}
	dp, dt, err = SharedTrajectory(8, XChain)
	if err != nil {
		t.Fatal(err)
	}
	if dp != -1 || dt != 1 {
		t.Fatalf("X trajectory (Δp=%d,Δt=%d), want (-1,1)", dp, dt)
	}
}

func TestChainKindHelpers(t *testing.T) {
	if XChain.String() != "X" || XConjChain.String() != "X*" {
		t.Error("chain names wrong")
	}
	if XChain.Dir() != -1 || XConjChain.Dir() != 1 {
		t.Error("chain directions wrong")
	}
}

func TestRenderSpaceTime(t *testing.T) {
	out := RenderSpaceTime(4, XConjChain)
	if !strings.Contains(out, "X* chain (m=4)") {
		t.Fatalf("missing header: %q", out)
	}
	// t=0, a=0 consumes value 0.
	if !strings.Contains(out, "0 |") {
		t.Fatal("missing time rows")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3+7 { // header + axis + separator + 7 time rows
		t.Fatalf("rendered %d lines", len(lines))
	}
}

// Property: every consecutive usage pair of every value hops exactly
// (Dir, +1), for random m.
func TestQuickTrajectoryUniform(t *testing.T) {
	f := func(m8 uint8, conj bool) bool {
		m := int(m8%10) + 2
		kind := XChain
		if conj {
			kind = XConjChain
		}
		_, _, err := SharedTrajectory(m, kind)
		return err == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
