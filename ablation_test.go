package tiledcfd

// Ablation benchmarks for the design choices docs/PAPER_MAPPING.md
// calls out: the
// 3-cycle MAC assumption behind Table 1, folding vs the unfolded array,
// the Q15 fixed-point path vs the float reference, block-parallel
// software computation, and the analysis window. These quantify how the
// paper's numbers move when an assumption changes.

import (
	"math"
	"math/cmplx"
	"testing"

	"tiledcfd/internal/fft"
	"tiledcfd/internal/fixed"
	"tiledcfd/internal/mapping"
	"tiledcfd/internal/scf"
	"tiledcfd/internal/soc"
	"tiledcfd/internal/systolic"
)

// BenchmarkAblation_MACLatency recomputes the Table 1 total under 1-, 2-
// and 3-cycle multiply-accumulate datapaths. The MAC loop dominates the
// budget (87%), so its latency assumption is the lever on the 140 µs
// headline.
func BenchmarkAblation_MACLatency(b *testing.B) {
	totals := map[int]int{}
	for i := 0; i < b.N; i++ {
		for _, macCycles := range []int{1, 2, 3} {
			model := mapping.PaperCycleModel()
			model.MACCycles = macCycles
			s, err := mapping.BuildCoreSchedule(64, 256, 4, 0, model)
			if err != nil {
				b.Fatal(err)
			}
			totals[macCycles] = s.TotalCycles()
		}
	}
	b.ReportMetric(float64(totals[1]), "cycles_mac1")
	b.ReportMetric(float64(totals[2]), "cycles_mac2")
	b.ReportMetric(float64(totals[3]), "cycles_mac3_paper")
	b.ReportMetric(float64(totals[3])/100, "block_time_us_paper")
}

// BenchmarkAblation_FoldedVsUnfolded compares the simulation throughput
// of the unfolded 127-PE array against the folded 4-core architecture
// (identical arithmetic, different structure).
func BenchmarkAblation_FoldedVsUnfolded(b *testing.B) {
	x := fixed.FromFloatSlice(paperSignal(b, 1))
	spectra, err := scf.FixedSpectra(x, scf.Params{K: 256, M: 64})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("unfolded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ar, err := systolic.NewFixedArray(64)
			if err != nil {
				b.Fatal(err)
			}
			if err := ar.ProcessBlock(spectra[0]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("folded_q4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fa, err := systolic.NewFoldedArray(64, 4)
			if err != nil {
				b.Fatal(err)
			}
			if err := fa.ProcessBlock(spectra[0]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_FixedVsFloat measures the Q15 quantisation error of
// the full fixed-point path (fixed FFT + saturating accumulation) against
// the float reference, as the worst relative cell error on the feature
// row. This bounds what 16-bit memories cost in accuracy.
func BenchmarkAblation_FixedVsFloat(b *testing.B) {
	const k, m, blocks = 256, 64, 2
	x := paperSignal(b, blocks)
	// Condition like the pipeline: peak at 0.5 so Q15 never saturates.
	cond := make([]complex128, len(x))
	copy(cond, x)
	fixed.ScaleSliceFloat(cond, 0.5)
	var worst float64
	for i := 0; i < b.N; i++ {
		qx := fixed.FromFloatSlice(cond)
		fs, err := scf.ComputeFixed(qx, scf.Params{K: k, M: m, Blocks: blocks})
		if err != nil {
			b.Fatal(err)
		}
		ref, _, err := scf.Compute(cond, scf.Params{K: k, M: m, Blocks: blocks})
		if err != nil {
			b.Fatal(err)
		}
		got := fs.Float(blocks)
		ref.Scale(1 / float64(k*k)) // fixed FFT is DFT/K; product squares it
		// Worst absolute error over the grid, relative to the PSD peak —
		// the error a detector thresholding the surface actually sees.
		peak := 0.0
		for f := -(m - 1); f <= m-1; f++ {
			if v := cmplx.Abs(ref.At(f, 0)); v > peak {
				peak = v
			}
		}
		worst = 0
		for a := -(m - 1); a <= m-1; a++ {
			for f := -(m - 1); f <= m-1; f++ {
				if d := cmplx.Abs(got.At(f, a) - ref.At(f, a)); d > worst {
					worst = d
				}
			}
		}
		worst /= peak
	}
	b.ReportMetric(worst, "worst_error_vs_psd_peak")
}

// BenchmarkAblation_ParallelSCF compares the sequential and
// block-parallel software DSCF (bit-identical results; see
// scf.ComputeParallel).
func BenchmarkAblation_ParallelSCF(b *testing.B) {
	const blocks = 8
	x := paperSignal(b, blocks)
	p := scf.Params{K: 256, M: 64, Blocks: blocks}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := scf.Compute(x, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := scf.ComputeParallel(x, p, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_CoreSweep measures the per-block critical path as the
// core count grows within one platform. Unlike the paper's linear
// inter-platform scaling (E11), intra-platform scaling saturates at the
// serial floor (FFT + reshuffle + init + read data = 1804 cycles), an
// Amdahl bound the paper does not discuss.
func BenchmarkAblation_CoreSweep(b *testing.B) {
	x := fixed.FromFloatSlice(paperSignal(b, 1))
	var pts []soc.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = soc.SweepCores(256, 64, []int{4, 8, 16, 32}, x)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		if p.Feasible {
			b.ReportMetric(float64(p.CyclesPerBlock), "cycles_q"+itoa(p.Q))
		}
	}
	b.ReportMetric(float64(soc.SerialCycles(256, 64)), "serial_floor_cycles")
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblation_RealFFT quantifies the real-input FFT optimisation
// the paper leaves on the table: antenna samples are real (expression 1),
// so a specialised kernel needs 576 instead of 1024 complex mults,
// shrinking the Table 1 FFT row accordingly.
func BenchmarkAblation_RealFFT(b *testing.B) {
	x := make([]float64, 256)
	for i := range x {
		xc := paperSignalSample(i)
		x[i] = xc
	}
	for i := 0; i < b.N; i++ {
		if _, err := fft.RealForward(x); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(fft.ComplexMults(256)), "complex_fft_mults")
	b.ReportMetric(float64(fft.RealComplexMults(256)), "real_fft_mults")
}

// paperSignalSample gives a deterministic real sample stream for the
// real-FFT ablation without pulling the generator into the timed loop.
func paperSignalSample(i int) float64 {
	return 0.4*math.Sin(0.37*float64(i)) + 0.2*math.Cos(1.1*float64(i))
}

// BenchmarkAblation_WindowChoice measures the blind CFD statistic of the
// same BPSK band under different analysis windows. The rectangular window
// (the paper's implicit choice) keeps the strongest features; tapered
// windows trade feature strength for leakage suppression.
func BenchmarkAblation_WindowChoice(b *testing.B) {
	const k, m, blocks = 64, 16, 16
	x, err := NewBPSKBand(k*blocks, 8.0/k, 8, 6, 99)
	if err != nil {
		b.Fatal(err)
	}
	stats := map[fft.WindowKind]float64{}
	for i := 0; i < b.N; i++ {
		for _, w := range []fft.WindowKind{fft.Rectangular, fft.Hann, fft.Hamming, fft.Blackman} {
			s, _, err := scf.Compute(x, scf.Params{K: k, M: m, Blocks: blocks, Window: w})
			if err != nil {
				b.Fatal(err)
			}
			prof := s.AlphaProfile()
			best := 0.0
			for ai, v := range prof {
				a := ai - (m - 1)
				if a >= 2 || a <= -2 {
					if r := v / prof[m-1]; r > best {
						best = r
					}
				}
			}
			stats[w] = best
		}
	}
	b.ReportMetric(stats[fft.Rectangular], "stat_rectangular")
	b.ReportMetric(stats[fft.Hann], "stat_hann")
	b.ReportMetric(stats[fft.Hamming], "stat_hamming")
	b.ReportMetric(stats[fft.Blackman], "stat_blackman")
}
