// Package tiledcfd reproduces "Cyclostationary Feature Detection on a
// tiled-SoC" (Kokkeler, Smit, Krol, Kuper — DATE 2007): the computation of
// the Discrete Spectral Correlation Function (DSCF) for Cognitive-Radio
// spectrum sensing, mapped onto a simulated platform of four Montium
// coarse-grain reconfigurable cores via the paper's two-step methodology.
//
// The root package is a thin facade over the internal engine. Typical
// uses:
//
//   - Sense: run full spectrum sensing (quantise → 4-tile platform
//     simulation → DSCF → cyclostationary detection verdict → section 5
//     evaluation figures), or — via Config.Estimator — the same decision
//     chain over a software estimator (direct DSCF, FAM or SSCA);
//   - SpectralCorrelation: compute a spectral-correlation surface with
//     any estimator, returning the strongest feature and the work spent;
//   - DSCF: compute a reference spectral-correlation surface of a sampled
//     signal in float64 (superseded by SpectralCorrelation);
//   - DeriveMapping: run the paper's step-1 derivation for any grid size
//     and core count, returning the task distribution and interconnect
//     figures;
//   - Table1: measure the paper's Table 1 cycle breakdown from the
//     simulated platform.
//
// See the examples directory for runnable scenarios and
// docs/PAPER_MAPPING.md for the per-table/per-figure reproduction map.
package tiledcfd
