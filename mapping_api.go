package tiledcfd

import (
	"fmt"

	"tiledcfd/internal/tile"
)

// FabricConfig describes the modeled multi-tile platform MapEstimate
// schedules onto: how many Montium tiles, how fast they clock, how much
// local memory each carries, and what the NoC links cost. Zero fields
// take the paper's platform (4 tiles, 100 MHz, 10×1024 words, 4-cycle
// link latency, one 16-bit word per cycle).
type FabricConfig struct {
	// Tiles is the tile count (the paper's Q).
	Tiles int
	// ClockMHz is the tile clock.
	ClockMHz float64
	// LocalMemWords is each tile's local memory in 16-bit words.
	LocalMemWords int
	// LinkLatency is the fixed per-transfer NoC latency in cycles: 0
	// takes the default 4, a negative value a true zero-latency link.
	LinkLatency int
	// LinkWordsPerCycle is the NoC link bandwidth in 16-bit words per
	// cycle.
	LinkWordsPerCycle float64
}

// fabric converts the public config to the internal model.
func (fc FabricConfig) fabric() tile.Fabric {
	return tile.Fabric{
		Tiles:             fc.Tiles,
		ClockMHz:          fc.ClockMHz,
		LocalMemWords:     fc.LocalMemWords,
		LinkLatency:       fc.LinkLatency,
		LinkWordsPerCycle: fc.LinkWordsPerCycle,
	}
}

// MappingNames returns the mapping strategies MapEstimate accepts, in
// report order: "single" (one-tile baseline), "pipelined" (one pipeline
// stage per tile) and "sharded" (each stage's hops/rows/strips
// distributed across all tiles).
func MappingNames() []string { return tile.Strategies() }

// TileLoad is one tile's predicted load in a mapping estimate.
type TileLoad struct {
	// Tile is the tile index.
	Tile int
	// Tasks counts the pipeline tasks mapped onto the tile.
	Tasks int
	// ComputeCycles is the tile's modeled datapath work per window;
	// TransferCycles its NoC port occupancy moving operands on and off.
	ComputeCycles, TransferCycles int64
	// Utilization is ComputeCycles over the window's end-to-end latency,
	// in [0, 1].
	Utilization float64
	// MemWords is the largest resident task footprint on the tile.
	MemWords int64
	// MemOK reports whether MemWords fits the fabric's local memory.
	MemOK bool
}

// MappingEstimate is the predicted execution of one estimator window
// mapped onto a tile fabric: the multi-tile counterpart of the paper's
// Table 1, produced by MapEstimate.
type MappingEstimate struct {
	// Estimator and Strategy name the pipeline and the mapping.
	Estimator, Strategy string
	// Tiles is the fabric size the schedule used.
	Tiles int
	// Tasks and Transfers count the scheduled DAG tasks and the NoC
	// movements the schedule charged.
	Tasks, Transfers int
	// WindowSamples is the input samples one window consumes.
	WindowSamples int
	// LatencyCycles is the end-to-end latency of one window in cycles.
	LatencyCycles int64
	// LatencyMicros is the same latency at the fabric clock.
	LatencyMicros float64
	// BottleneckCycles is the busiest tile's occupancy per window — the
	// steady-state initiation interval when windows pipeline.
	BottleneckCycles int64
	// SustainedSamplesPerSec is the predicted steady-state throughput
	// with consecutive windows pipelined.
	SustainedSamplesPerSec float64
	// OneShotSamplesPerSec is the single-window throughput figure.
	OneShotSamplesPerSec float64
	// NoCWords and NoCCycles total the cross-tile traffic and its cost.
	NoCWords, NoCCycles int64
	// MemFeasible reports whether every tile's footprint fits its local
	// memory.
	MemFeasible bool
	// PerTile carries the per-tile breakdown.
	PerTile []TileLoad
}

// MapEstimate partitions the configured estimator's pipeline into a
// task DAG, maps it onto the fabric with the named strategy (one of
// MappingNames), and schedules it — predicting end-to-end latency,
// per-tile utilization, NoC traffic and sustained throughput. The
// schedule is validated (no tile oversubscription, every cross-tile
// edge charged a NoC transfer) before it is reported.
//
// cfg selects the pipeline exactly as for Sense: Estimator ("" defaults
// to "fam"; "platform" maps as the direct DSCF; the Q15 twins share
// their float pipeline's dataflow), K, M, Hop and Blocks (0 defaults to
// 8 blocks — the window must afford at least two channelizer hops).
func MapEstimate(cfg Config, fab FabricConfig, strategy string) (*MappingEstimate, error) {
	name := cfg.Estimator
	if name == "" {
		name = "fam"
	}
	// Resolve through the registry first so unknown names get the
	// standard "unknown estimator" error listing the valid set.
	check := cfg
	check.Estimator = name
	if _, err := check.estimator(); err != nil {
		return nil, err
	}
	blocks := cfg.Blocks
	if blocks == 0 {
		blocks = 8
	}
	// Params go through raw: Hop 0 must stay the "estimator default"
	// sentinel for BuildGraph (WithDefaults would rewrite it to the
	// direct method's K and silently change the FAM pipeline).
	p := cfg.params(cfg.Hop)
	k := p.WithDefaults().K
	g, err := tile.BuildGraph(name, p, k*blocks)
	if err != nil {
		return nil, fmt.Errorf("tiledcfd: %w", err)
	}
	s, err := tile.NewSchedule(g, fab.fabric(), strategy)
	if err != nil {
		return nil, fmt.Errorf("tiledcfd: %w", err)
	}
	out := &MappingEstimate{
		Estimator:              name,
		Strategy:               strategy,
		Tiles:                  s.Fabric.Tiles,
		Tasks:                  len(g.Tasks),
		Transfers:              len(s.Transfers),
		WindowSamples:          g.WindowSamples,
		LatencyCycles:          s.Makespan,
		LatencyMicros:          s.LatencyMicros(),
		BottleneckCycles:       s.BottleneckCycles,
		SustainedSamplesPerSec: s.SustainedSamplesPerSec(),
		OneShotSamplesPerSec:   s.OneShotSamplesPerSec(),
		NoCWords:               s.NoCWords,
		NoCCycles:              s.NoCCycles,
		MemFeasible:            s.MemFeasible(),
	}
	// Cycle figures come through the scf.Stats per-tile form — the same
	// plumbing the Q15 backends fill — so every consumer reads one shape.
	for t, tc := range s.PerTileStats() {
		u := s.PerTile[t]
		out.PerTile = append(out.PerTile, TileLoad{
			Tile:           tc.Tile,
			Tasks:          u.Tasks,
			ComputeCycles:  tc.Compute,
			TransferCycles: tc.Transfer,
			Utilization:    s.Utilization(t),
			MemWords:       u.MemWords,
			MemOK:          u.MemOK(s.Fabric.LocalMemWords),
		})
	}
	return out, nil
}
