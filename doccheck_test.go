package tiledcfd

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// auditedPackages are the directories whose exported identifiers must
// all carry doc comments — the godoc audit the docs CI job enforces.
// The list covers the public facade and the subsystems the README sends
// readers into.
var auditedPackages = []string{
	".",
	"internal/chaos",
	"internal/detect",
	"internal/fft",
	"internal/fixed",
	"internal/scf",
	"internal/sig",
	"internal/shard",
	"internal/stream",
	"internal/tile",
	"internal/montium",
	"internal/wire",
}

// TestExportedDocComments fails for every exported identifier in the
// audited packages that godoc would render without a doc comment.
func TestExportedDocComments(t *testing.T) {
	for _, dir := range auditedPackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			if strings.HasSuffix(name, "_test") {
				continue
			}
			for file, f := range pkg.Files {
				if strings.HasSuffix(file, "_test.go") {
					continue
				}
				auditFile(t, fset, file, f)
			}
		}
	}
}

func auditFile(t *testing.T, fset *token.FileSet, file string, f *ast.File) {
	report := func(pos token.Pos, what string) {
		t.Errorf("%s: exported %s lacks a doc comment", fset.Position(pos), what)
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !receiverExported(d) {
				continue
			}
			if d.Doc == nil {
				report(d.Pos(), "function/method "+d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type "+s.Name.Name)
					}
					// Struct fields: exported fields need a doc or line
					// comment too.
					if st, ok := s.Type.(*ast.StructType); ok && s.Name.IsExported() {
						for _, fld := range st.Fields.List {
							for _, n := range fld.Names {
								if n.IsExported() && fld.Doc == nil && fld.Comment == nil {
									report(n.Pos(), "field "+s.Name.Name+"."+n.Name)
								}
							}
						}
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(n.Pos(), "const/var "+n.Name)
						}
					}
				}
			}
		}
	}
}

// receiverExported reports whether a method's receiver type is exported
// (methods on unexported types never surface in godoc).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}
