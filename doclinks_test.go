package tiledcfd

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// markdownLink matches [text](target) links, excluding images' extra
// bang (which the expression still captures — image targets must exist
// too).
var markdownLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocLinks fails for every relative link in README.md and docs/
// whose target does not exist — the dead-link gate of the docs CI job.
// Absolute URLs, pure anchors and GitHub-web-relative paths that
// escape the repository root (e.g. the CI badge's ../../actions/...)
// are skipped.
func TestDocLinks(t *testing.T) {
	files := []string{"README.md"}
	matches, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, matches...)
	if len(files) < 3 {
		t.Fatalf("expected README.md plus at least two docs/*.md files, found %v", files)
	}
	root, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range markdownLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			abs, err := filepath.Abs(resolved)
			if err != nil || !strings.HasPrefix(abs, root+string(filepath.Separator)) {
				// Escapes the repository: a GitHub-web-relative URL, not
				// a file link.
				continue
			}
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: dead relative link %q (%v)", file, m[1], err)
			}
		}
	}
}
